//! Closed-loop load generator with a chaos mode and an exactly-once
//! ledger.
//!
//! Every client owns a strictly increasing idempotency-key counter and has
//! exactly one operation outstanding: on `RetryAfter`/`Timeout` it backs
//! off and retries the *same* key until the service acknowledges it. That
//! closed loop is what makes the ledger decisive — at quiescence, the
//! number of operations the service *applied* for a client
//! ([`crate::Frontend::applied_ops`]) must equal the number the client saw
//! *acknowledged*: a shortfall is a lost operation, an excess is a
//! duplicate, and either fails the run.
//!
//! Load shape: zipfian hot keys (precomputed CDF), optional bursty
//! busy/idle arrival phases, and a read/write mix. Chaos mode arms a
//! [`rinval::faults`] spec mid-run (optionally killing an invalidation
//! server so engine-level degradation composes with service-level faults),
//! disarms it, then watches the windowed write p99 until it returns under
//! the SLO — recovery must land inside the configured window.

use crate::{Request, SvcConfig, SvcError, SvcStats, Workload};
use rinval::faults::site;
use rinval::{FaultAction, ServerStats, Stm};
use stamp::SplitMix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Builds a concrete request from the sampled shape: `(client, rng,
/// hot_key, write?) -> (endpoint, args)`. This is the only
/// workload-specific piece of the generator.
pub type RequestPlan = dyn Fn(u64, &mut SplitMix, u64, bool) -> (u8, [u64; 4]) + Sync;

/// Bursty arrival phases: `busy` of full-rate submission, then `idle` of
/// silence, repeating.
#[derive(Clone, Copy, Debug)]
pub struct Burst {
    /// Full-rate phase length.
    pub busy: Duration,
    /// Silent phase length.
    pub idle: Duration,
}

/// Chaos-mode schedule.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// When (after start) to arm the fault spec.
    pub arm_at: Duration,
    /// When to disarm every site again.
    pub disarm_at: Duration,
    /// `RINVAL_FAILPOINTS`-syntax spec to arm (may be empty).
    pub spec: String,
    /// Additionally kill one invalidation server (engine-level fault) at
    /// arm time.
    pub kill_inval_server: bool,
    /// Recovery budget: windowed write p99 must return under the SLO
    /// within this long after disarm.
    pub recovery_window: Duration,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Closed-loop client threads.
    pub clients: u64,
    /// Measured run length (excludes the drain phase).
    pub duration: Duration,
    /// Per-request deadline.
    pub timeout: Duration,
    /// Percent of operations that are writes.
    pub write_pct: u64,
    /// Hot-key space sampled through the zipfian CDF.
    pub keys: u64,
    /// Zipf exponent (0 = uniform; 1 ≈ classic web skew).
    pub zipf_s: f64,
    /// Optional bursty arrivals.
    pub burst: Option<Burst>,
    /// Deterministic seed. Per-client streams are split off a parent
    /// SplitMix64 generator seeded with this ([`stamp::SplitMix::split`]),
    /// so client `c`'s request sequence is a pure function of
    /// `(seed, c, plan)`.
    pub seed: u64,
    /// Optional chaos schedule.
    pub chaos: Option<ChaosConfig>,
    /// Ops-bounded mode: each client issues exactly this many operations
    /// instead of running for [`LoadConfig::duration`] — the replay mode,
    /// where the set of issued requests (and so the fault-site hit counts)
    /// must not depend on wall-clock speed. Bursty arrivals are ignored
    /// (they only shape time).
    pub ops_per_client: Option<u64>,
    /// Write retry budget before a client gives up on its key and reports
    /// itself undrained. The default is effectively "retry until the drain
    /// is conclusive"; chaos episodes lower it so a plan that permanently
    /// swallows replies (e.g. the dedup-disabled canary) fails fast
    /// instead of spinning through thousands of timeouts.
    pub max_write_tries: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            duration: Duration::from_millis(500),
            timeout: Duration::from_millis(100),
            write_pct: 50,
            keys: 256,
            zipf_s: 1.0,
            burst: None,
            seed: 0x10AD,
            chaos: None,
            ops_per_client: None,
            max_write_tries: 10_000,
        }
    }
}

/// Per-endpoint slice of a [`LoadReport`].
#[derive(Clone, Debug)]
pub struct EndpointReport {
    /// Endpoint name.
    pub name: &'static str,
    /// Requests that ran a transaction.
    pub executed: u64,
    /// Lifetime p50, upper bucket edge in ns (0 when nothing executed).
    pub p50_ns: u64,
    /// Lifetime p99, upper bucket edge in ns (0 when nothing executed).
    pub p99_ns: u64,
}

/// Outcome of one load run: the ledger, the latency profile, recovery.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Per-endpoint latency/volume.
    pub endpoints: Vec<EndpointReport>,
    /// Write operations acknowledged to clients (unique keys).
    pub acked_writes: u64,
    /// Write operations the service applied (dedup-ledger sum).
    pub applied_writes: u64,
    /// Acked but never applied — must be 0.
    pub lost: u64,
    /// Applied beyond acked — must be 0 once drained.
    pub duplicated: u64,
    /// Clients that exhausted the drain budget with a key still
    /// unacknowledged (makes the ledger inconclusive; fails the run).
    pub undrained: u64,
    /// Service lifecycle counters.
    pub svc: SvcStats,
    /// Engine counters (respawns, degradations, timeout withdrawals …).
    pub server: ServerStats,
    /// Whether the engine degraded off its nominal algorithm.
    pub degraded: bool,
    /// Time from chaos disarm to the write p99 returning under the SLO
    /// (`None` = never recovered, or no chaos was scheduled).
    pub recovered_after: Option<Duration>,
    /// Whether chaos was scheduled.
    pub chaos_ran: bool,
    /// Fault-journal fires recorded during the run (0 without the
    /// `failpoints` feature).
    pub fault_fires: u64,
    /// Order-insensitive fault-journal digest — the replay gate's equality
    /// surface (0 without the `failpoints` feature).
    pub fault_digest: u64,
}

impl LoadReport {
    /// The pass/fail verdict the chaos gate enforces: nothing lost,
    /// nothing duplicated, ledger conclusive, and — when chaos ran —
    /// recovery observed.
    pub fn ledger_ok(&self) -> bool {
        self.lost == 0
            && self.duplicated == 0
            && self.undrained == 0
            && (!self.chaos_ran || self.recovered_after.is_some())
    }

    /// Human/CI-readable summary. The per-endpoint lines are the
    /// bench-smoke grep surface: `endpoint=<name> … p50=<ns> p99=<ns>`.
    pub fn print(&self) {
        for ep in &self.endpoints {
            println!(
                "endpoint={} executed={} p50={}ns p99={}ns",
                ep.name, ep.executed, ep.p50_ns, ep.p99_ns
            );
        }
        println!(
            "ledger acked={} applied={} lost={} duplicated={} undrained={}",
            self.acked_writes, self.applied_writes, self.lost, self.duplicated, self.undrained
        );
        println!(
            "svc accepted={} rejected_full={} shed={} dedup_hits={} timeouts={} worker_deaths={} respawns={}",
            self.svc.accepted,
            self.svc.rejected_full,
            self.svc.shed_writes,
            self.svc.dedup_hits,
            self.svc.client_timeouts,
            self.svc.worker_deaths,
            self.svc.worker_respawns
        );
        match (self.chaos_ran, self.recovered_after) {
            (true, Some(d)) => println!("chaos recovered_after={}ms", d.as_millis()),
            (true, None) => println!("chaos recovered_after=NEVER"),
            (false, _) => {}
        }
        if self.fault_fires > 0 {
            println!(
                "faults fired={} digest={:#018x}",
                self.fault_fires, self.fault_digest
            );
        }
        println!(
            "verdict {} (degraded={})",
            if self.ledger_ok() { "OK" } else { "FAILED" },
            self.degraded
        );
    }
}

/// Zipfian sampler over `1..=keys` via a precomputed CDF.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(keys: u64, s: f64) -> Zipf {
        let n = keys.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix) -> u64 {
        let u = rng.below(1 << 53) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Runs the generator against `workload` behind a fresh service instance
/// on `stm`. Deterministic in everything but thread interleaving.
pub fn run(
    stm: &Stm,
    workload: &dyn Workload,
    svc_cfg: &SvcConfig,
    cfg: &LoadConfig,
    plan: &RequestPlan,
) -> LoadReport {
    assert!(
        cfg.clients <= svc_cfg.clients,
        "loadgen: more clients than the service's dedup table"
    );
    let write_endpoints: Vec<u8> = workload
        .endpoints()
        .iter()
        .enumerate()
        .filter_map(|(i, ep)| ep.writes.then_some(i as u8))
        .collect();
    let zipf = Zipf::new(cfg.keys, cfg.zipf_s);
    // Split one independent stream per client off a parent generator (the
    // SplitMix64 idiom) — the XOR-of-index scheme this replaces gave
    // correlated sibling streams and made replay depend on the mixing
    // constant instead of on the algorithm's own splitting contract.
    let client_rngs: Vec<SplitMix> = {
        let mut parent = SplitMix::new(cfg.seed);
        (0..cfg.clients).map(|_| parent.split()).collect()
    };
    let acked: Vec<AtomicU64> = (0..cfg.clients).map(|_| AtomicU64::new(0)).collect();
    let undrained = AtomicU64::new(0);
    let recovered_after: AtomicU64 = AtomicU64::new(u64::MAX);

    crate::serve(stm, workload, svc_cfg, |front| {
        let start = Instant::now();
        // Clients still generating; the chaos thread reads 0 as "the run
        // is over" (an idle service trivially meets its SLO).
        let live = AtomicU64::new(cfg.clients);
        std::thread::scope(|s| {
            // Chaos controller + recovery monitor.
            if let Some(chaos) = &cfg.chaos {
                let live = &live;
                let recovered = &recovered_after;
                let slo_ns = svc_cfg.slo_p99.as_nanos() as u64;
                let weps = write_endpoints.clone();
                s.spawn(move || {
                    let sleep_until = |t: Duration| {
                        let now = start.elapsed();
                        if t > now {
                            std::thread::sleep(t - now);
                        }
                    };
                    sleep_until(chaos.arm_at);
                    if !chaos.spec.is_empty() {
                        stm.faults().arm_from_spec(&chaos.spec);
                    }
                    if chaos.kill_inval_server {
                        stm.faults()
                            .arm(site::SERVER_INVAL_DEATH, FaultAction::Exit, Some(1));
                    }
                    sleep_until(chaos.disarm_at);
                    for idx in 0..site::COUNT {
                        stm.faults().disarm(idx);
                    }
                    // Recovery watch: sample the write-endpoint latency
                    // deltas until their p99 dips under the SLO.
                    let disarmed = Instant::now();
                    let mut prev: Vec<[u64; 32]> =
                        weps.iter().map(|&e| front.endpoint_latency(e).0).collect();
                    while disarmed.elapsed() <= chaos.recovery_window {
                        std::thread::sleep(Duration::from_millis(20));
                        let mut delta = [0u64; 32];
                        for (j, &e) in weps.iter().enumerate() {
                            let cur = front.endpoint_latency(e).0;
                            for i in 0..32 {
                                delta[i] += cur[i] - prev[j][i];
                            }
                            prev[j] = cur;
                        }
                        match crate::stats::quantile_ns(&delta, 0.99) {
                            Some(p99) if p99 <= slo_ns => {
                                recovered
                                    .store(disarmed.elapsed().as_nanos() as u64, Ordering::SeqCst);
                                return;
                            }
                            None if live.load(Ordering::SeqCst) == 0 => {
                                // No writes left to measure: the run ended
                                // and the idle service meets its SLO.
                                recovered
                                    .store(disarmed.elapsed().as_nanos() as u64, Ordering::SeqCst);
                                return;
                            }
                            _ => {}
                        }
                    }
                });
            }

            // Closed-loop clients.
            for c in 0..cfg.clients {
                let acked = &acked[c as usize];
                let undrained = &undrained;
                let zipf = &zipf;
                let weps = &write_endpoints;
                let live = &live;
                let mut rng = client_rngs[c as usize].clone();
                s.spawn(move || {
                    // Whatever path exits this thread, the chaos monitor
                    // must learn the generator population shrank.
                    struct Depart<'a>(&'a AtomicU64);
                    impl Drop for Depart<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _depart = Depart(live);
                    let mut next_key = 1u64;
                    let mut issued = 0u64;
                    loop {
                        match cfg.ops_per_client {
                            Some(n) if issued >= n => break,
                            None if start.elapsed() >= cfg.duration => break,
                            _ => {}
                        }
                        issued += 1;
                        if let Some(b) = cfg.burst.filter(|_| cfg.ops_per_client.is_none()) {
                            let period = b.busy + b.idle;
                            let phase = Duration::from_nanos(
                                (start.elapsed().as_nanos() % period.as_nanos()) as u64,
                            );
                            if phase >= b.busy {
                                std::thread::sleep(period - phase);
                                continue;
                            }
                        }
                        let write = rng.below(100) < cfg.write_pct;
                        let hot = zipf.sample(&mut rng);
                        let (endpoint, args) = if write {
                            plan(c, &mut rng, hot, true)
                        } else {
                            plan(c, &mut rng, hot, false)
                        };
                        debug_assert_eq!(weps.contains(&endpoint), write);
                        let key = if write {
                            let k = next_key;
                            next_key += 1;
                            k
                        } else {
                            0
                        };
                        let req = Request {
                            client: c,
                            key,
                            endpoint,
                            args,
                        };
                        // Writes retry-with-backoff until acknowledged: the
                        // ledger needs every issued key resolved. Reads are
                        // fire-and-forget after a few tries.
                        let mut backoff = Duration::from_micros(50);
                        let mut tries = 0u32;
                        loop {
                            match front.call(req, cfg.timeout) {
                                Ok(_) => {
                                    if write {
                                        acked.fetch_add(1, Ordering::Relaxed);
                                    }
                                    break;
                                }
                                Err(SvcError::Shutdown) => return,
                                Err(_) => {
                                    tries += 1;
                                    if !write && tries >= 3 {
                                        break;
                                    }
                                    if write && tries >= cfg.max_write_tries {
                                        // Inconclusive ledger: report it
                                        // loudly instead of spinning forever.
                                        undrained.fetch_add(1, Ordering::Relaxed);
                                        return;
                                    }
                                    std::thread::sleep(backoff);
                                    backoff = (backoff * 2).min(Duration::from_millis(5));
                                }
                            }
                        }
                    }
                });
            }
        });

        // Assemble the report while the service is still up (front-end
        // telemetry) — ledger sums are quiescent: all clients joined.
        let endpoints: Vec<EndpointReport> = workload
            .endpoints()
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let (hist, count) = front.endpoint_latency(i as u8);
                EndpointReport {
                    name: ep.name,
                    executed: count,
                    p50_ns: crate::stats::quantile_ns(&hist, 0.50).unwrap_or(0),
                    p99_ns: crate::stats::quantile_ns(&hist, 0.99).unwrap_or(0),
                }
            })
            .collect();
        let acked_writes: u64 = acked.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        let mut lost = 0u64;
        let mut duplicated = 0u64;
        let mut applied_writes = 0u64;
        for c in 0..cfg.clients {
            let a = acked[c as usize].load(Ordering::Relaxed);
            let applied = front.applied_ops(c);
            applied_writes += applied;
            lost += a.saturating_sub(applied);
            duplicated += applied.saturating_sub(a);
        }
        let rec = recovered_after.load(Ordering::SeqCst);
        LoadReport {
            endpoints,
            acked_writes,
            applied_writes,
            lost,
            duplicated,
            undrained: undrained.load(Ordering::Relaxed),
            svc: front.stats(),
            server: stm.server_stats(),
            degraded: stm.is_degraded(),
            recovered_after: (rec != u64::MAX).then(|| Duration::from_nanos(rec)),
            chaos_ran: cfg.chaos.is_some(),
            fault_fires: stm.faults().journal_fires(),
            fault_digest: stm.faults().journal_digest(),
        }
    })
}
