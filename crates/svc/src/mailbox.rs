//! Bounded per-worker mailboxes and one-shot reply slots.
//!
//! The mailbox is the admission boundary of the service: a full queue
//! rejects at the door ([`Mailbox::try_push`] fails, the front-end answers
//! `RetryAfter`) instead of queueing without bound — queue depth is the
//! one resource a closed-loop client cannot protect on its own, and an
//! unbounded queue converts overload into unbounded latency for everyone
//! behind it.
//!
//! The reply slot is a one-shot channel with an *abandonment* protocol:
//! when the client's deadline fires it marks the slot `Abandoned` and
//! walks away; a worker that finishes the request later delivers into the
//! abandoned slot, which drops the value (counted as a late reply) instead
//! of blocking or leaking. This is what makes a lost reply safe: the
//! operation may well have committed, and the client's retry of the same
//! idempotency key is answered from the dedup window (DESIGN.md §17).

use crate::{Request, SvcError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One queued request: payload, absolute deadline, reply channel.
pub(crate) struct Envelope {
    pub(crate) req: Request,
    pub(crate) deadline: Instant,
    pub(crate) reply: Arc<ReplySlot>,
}

/// A bounded MPSC queue feeding one worker.
pub(crate) struct Mailbox {
    q: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
    cap: usize,
}

impl Mailbox {
    pub(crate) fn new(cap: usize) -> Mailbox {
        Mailbox {
            q: Mutex::new(VecDeque::with_capacity(cap)),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues unless the mailbox is full; a full mailbox returns the
    /// envelope so the caller can reject it immediately.
    pub(crate) fn try_push(&self, env: Envelope) -> Result<(), Envelope> {
        let mut q = self.q.lock().unwrap();
        if q.len() >= self.cap {
            return Err(env);
        }
        q.push_back(env);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until an envelope is available or `shutdown` is observed
    /// (returns `None` — remaining envelopes are left for [`drain`]).
    ///
    /// [`drain`]: Mailbox::drain
    pub(crate) fn pop(&self, shutdown: &AtomicBool) -> Option<Envelope> {
        let mut q = self.q.lock().unwrap();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(env) = q.pop_front() {
                return Some(env);
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Wakes a blocked [`pop`](Mailbox::pop) so it can observe shutdown.
    ///
    /// Takes (and immediately releases) the queue lock first: `pop` checks
    /// the shutdown flag under that lock before entering `wait`, so an
    /// unlocked notify could land in the gap between a worker's check and
    /// its wait and be lost — the worker would then block forever, since no
    /// further pushes arrive after shutdown. Holding the lock orders this
    /// wake strictly after any in-progress check-then-wait.
    pub(crate) fn notify(&self) {
        drop(self.q.lock().unwrap());
        self.cv.notify_all();
    }

    /// Takes everything still queued (shutdown path).
    pub(crate) fn drain(&self) -> Vec<Envelope> {
        self.q.lock().unwrap().drain(..).collect()
    }
}

enum ReplyState {
    Waiting,
    Done(Result<u64, SvcError>),
    Abandoned,
}

/// One-shot reply channel with client-side abandonment.
pub(crate) struct ReplySlot {
    state: Mutex<ReplyState>,
    cv: Condvar,
}

impl ReplySlot {
    pub(crate) fn new() -> ReplySlot {
        ReplySlot {
            state: Mutex::new(ReplyState::Waiting),
            cv: Condvar::new(),
        }
    }

    /// Worker side: delivers the outcome. Returns `false` if the client
    /// already abandoned the slot (the value is dropped — a late reply).
    pub(crate) fn deliver(&self, outcome: Result<u64, SvcError>) -> bool {
        let mut st = self.state.lock().unwrap();
        match *st {
            ReplyState::Waiting => {
                *st = ReplyState::Done(outcome);
                drop(st);
                self.cv.notify_one();
                true
            }
            ReplyState::Abandoned => false,
            // One envelope, one worker, one verdict: double delivery is a
            // service-layer bug, not a client-visible condition.
            ReplyState::Done(_) => unreachable!("svc: reply delivered twice"),
        }
    }

    /// Client side: waits until delivery or `deadline`. A deadline miss
    /// marks the slot abandoned and reports `Timeout`.
    pub(crate) fn wait(&self, deadline: Instant) -> Result<u64, SvcError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let ReplyState::Done(outcome) = &*st {
                return *outcome;
            }
            let now = Instant::now();
            if now >= deadline {
                *st = ReplyState::Abandoned;
                return Err(SvcError::Timeout);
            }
            let (g, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env(key: u64) -> Envelope {
        Envelope {
            req: Request {
                client: 0,
                key,
                endpoint: 0,
                args: [0; 4],
            },
            deadline: Instant::now() + Duration::from_secs(1),
            reply: Arc::new(ReplySlot::new()),
        }
    }

    #[test]
    fn full_mailbox_rejects_at_the_door() {
        let mb = Mailbox::new(2);
        assert!(mb.try_push(env(1)).is_ok());
        assert!(mb.try_push(env(2)).is_ok());
        let back = mb.try_push(env(3)).unwrap_err();
        assert_eq!(back.req.key, 3);
        let stop = AtomicBool::new(false);
        assert_eq!(mb.pop(&stop).unwrap().req.key, 1);
        assert!(mb.try_push(env(3)).is_ok());
        assert_eq!(mb.drain().len(), 2);
    }

    #[test]
    fn abandoned_slot_drops_late_reply() {
        let slot = ReplySlot::new();
        // Deadline already passed: the wait abandons immediately.
        assert_eq!(slot.wait(Instant::now()), Err(SvcError::Timeout));
        assert!(!slot.deliver(Ok(7)), "late reply not dropped");
    }

    #[test]
    fn delivery_wakes_waiter() {
        let slot = Arc::new(ReplySlot::new());
        let s2 = slot.clone();
        let t = std::thread::spawn(move || s2.wait(Instant::now() + Duration::from_secs(5)));
        assert!(slot.deliver(Ok(42)), "waiter still present, must deliver");
        assert_eq!(t.join().unwrap(), Ok(42));
    }
}
