//! The invariant oracle: every end-of-run safety check the soak, chaos
//! and search harnesses share, in one place.
//!
//! Before this module each harness carried its own copy-pasted subset of
//! the checks (`soak.rs` checked the registry but not the ledger,
//! `chaos.rs` the ledger but not the registry, the service drills
//! neither), which meant a fault that corrupted an unchecked surface in
//! one harness slipped through. The oracle closes that: a harness hands
//! over whatever it has — the quiescent [`Stm`], the [`Workload`], the
//! [`LoadReport`] — plus an [`Allowances`] describing what its fault plan
//! *permitted*, and gets back the full list of violations.
//!
//! Returning the list (instead of asserting) is what makes the oracle
//! reusable by the chaos search: the search treats a non-empty list as a
//! failing episode to shrink, while the test harnesses simply assert
//! emptiness with the list as the message.

use crate::loadgen::LoadReport;
use crate::Workload;
use rinval::faults::{self, site};
use rinval::Stm;

/// What the armed fault plan permitted, so the oracle can tell *injected*
/// damage (a commit-server killed on purpose may legitimately end in
/// degradation) from *spontaneous* damage (a quiet run must not degrade).
#[derive(Clone, Copy, Debug, Default)]
pub struct Allowances {
    /// Engine degradation is acceptable: the plan armed a server-level
    /// fault (death/stall/lag/watchdog) or killed an invalidation server.
    pub degraded: bool,
    /// Any fault site was armed at any point (suppresses the quiet-run
    /// checks that only hold when nothing was injected).
    pub faults_armed: bool,
}

impl Allowances {
    /// Derives the allowances from an `RINVAL_FAILPOINTS`-syntax spec
    /// (plus whether the schedule additionally killed an invalidation
    /// server). Panics on malformed specs, like arming does.
    pub fn from_spec(spec: &str, kill_inval_server: bool) -> Allowances {
        let entries = faults::parse_spec(spec);
        let armed = entries.iter().any(|(_, a, _)| a.is_some()) || kill_inval_server;
        // Any server-side site can end in degradation: deaths drain the
        // respawn budget, stalls/lags trip the stall detector, and a
        // blinded watchdog lets either outcome land late.
        let server_sites = [
            site::SERVER_COMMIT_STALL,
            site::SERVER_COMMIT_DEATH,
            site::SERVER_INVAL_DEATH,
            site::SERVER_INVAL_LAG,
            site::SERVER_WATCHDOG_SKIP,
        ];
        let degraded = kill_inval_server
            || entries
                .iter()
                .any(|(s, a, _)| a.is_some() && server_sites.contains(s));
        Allowances {
            degraded,
            faults_armed: armed,
        }
    }
}

/// Engine-level invariants at quiescence (no transactions in flight, all
/// client threads deregistered): no leaked irrevocable token, a quiescent
/// registry, degradation only when the plan permits it (and agreeing with
/// its counter), and sane heap occupancy accounting.
pub fn check_engine(stm: &Stm, allow: &Allowances, out: &mut Vec<String>) {
    if let Some(slot) = stm.irrevocable_holder() {
        out.push(format!("engine: irrevocable token leaked (slot {slot})"));
    }
    let reg = stm.registry();
    for i in 0..reg.len() {
        if reg.live().get(i) || reg.pending().get(i) {
            out.push(format!("engine: registry not quiescent at slot {i}"));
        }
    }
    let st = stm.server_stats();
    if stm.is_degraded() && !allow.degraded {
        out.push(format!(
            "engine: degraded without a server-level fault armed: {st:?}"
        ));
    }
    if stm.is_degraded() && st.degradations == 0 {
        out.push("engine: degraded flag set but degradations counter is 0".into());
    }
    let hs = stm.heap_stats();
    if hs.freed_words > hs.allocated_words {
        out.push(format!(
            "heap: freed {} words but only {} ever allocated",
            hs.freed_words, hs.allocated_words
        ));
    }
    if hs.in_use_words() > hs.capacity_words as u64 {
        out.push(format!(
            "heap: occupancy {} exceeds capacity {}",
            hs.in_use_words(),
            hs.capacity_words
        ));
    }
}

/// The exactly-once ledger: nothing lost, nothing duplicated, every key
/// resolved — and when a chaos schedule ran, recovery observed.
pub fn check_ledger(report: &LoadReport, out: &mut Vec<String>) {
    if report.lost != 0 {
        out.push(format!("ledger: {} operations lost", report.lost));
    }
    if report.duplicated != 0 {
        out.push(format!("ledger: {} operations duplicated", report.duplicated));
    }
    if report.undrained != 0 {
        out.push(format!(
            "ledger: {} clients undrained (inconclusive)",
            report.undrained
        ));
    }
    if report.chaos_ran && report.recovered_after.is_none() {
        out.push("slo: write p99 never returned under the SLO after disarm".into());
    }
}

/// Cross-layer accounting: engine-level deadline escapes (timeout
/// withdrawals) and recovery activity must be visible as *some*
/// client-observable pressure on a run where nothing was injected — a
/// counter ticking on a perfectly quiet run means an accounting leak.
pub fn check_accounting(report: &LoadReport, allow: &Allowances, out: &mut Vec<String>) {
    if allow.faults_armed {
        return; // injected faults legitimately produce all of the below
    }
    let client_pressure = report.svc.client_timeouts > 0
        || report.svc.rejected_full > 0
        || report.svc.shed_writes > 0
        || report.undrained > 0
        || report.degraded;
    if report.server.timeout_withdrawals > 0 && !client_pressure {
        out.push(format!(
            "accounting: {} timeout withdrawals on a run with no \
             client-visible pressure",
            report.server.timeout_withdrawals
        ));
    }
    if report.server.respawns > 0 {
        out.push(format!(
            "accounting: {} server respawns with no fault armed",
            report.server.respawns
        ));
    }
    if report.svc.worker_deaths > 0 {
        out.push(format!(
            "accounting: {} worker deaths with no fault armed",
            report.svc.worker_deaths
        ));
    }
}

/// Workload conservation ([`Workload::verify`]), quiescent.
pub fn check_conservation(stm: &Stm, workload: &dyn Workload, out: &mut Vec<String>) {
    if let Err(e) = workload.verify(stm) {
        out.push(format!("conservation: {e}"));
    }
}

/// Runs every check the harness has inputs for and returns the violation
/// list (empty = the episode passed). This is the single verdict surface
/// shared by the soak/chaos tests, `svc_loadgen` and the chaos search.
pub fn check_all(
    stm: &Stm,
    workload: &dyn Workload,
    report: &LoadReport,
    allow: &Allowances,
) -> Vec<String> {
    let mut out = Vec::new();
    check_ledger(report, &mut out);
    check_conservation(stm, workload, &mut out);
    check_engine(stm, allow, &mut out);
    check_accounting(report, allow, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    #[test]
    fn allowances_from_spec_classifies_sites() {
        let a = Allowances::from_spec("", false);
        assert!(!a.degraded && !a.faults_armed);
        let a = Allowances::from_spec("", true);
        assert!(a.degraded && a.faults_armed);
        let a = Allowances::from_spec("svc.reply.pre=exit:3", false);
        assert!(!a.degraded && a.faults_armed);
        let a = Allowances::from_spec("server.commit.death=exit", false);
        assert!(a.degraded && a.faults_armed);
        let a = Allowances::from_spec("server.watchdog.skip=fail:4", false);
        assert!(a.degraded && a.faults_armed);
        // Disarm-only entries arm nothing.
        let a = Allowances::from_spec("server.commit.death=off", false);
        assert!(!a.degraded && !a.faults_armed);
    }

    #[test]
    fn quiescent_engine_passes_and_checks_fire() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build();
        let mut out = Vec::new();
        check_engine(&stm, &Allowances::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
        // A leaked live bit (a slot that died without clearing its
        // summary) makes the registry non-quiescent.
        stm.registry().live().set(0);
        let mut out = Vec::new();
        check_engine(&stm, &Allowances::default(), &mut out);
        assert!(
            out.iter().any(|v| v.contains("registry not quiescent")),
            "{out:?}"
        );
        stm.registry().live().clear(0);
    }

    #[test]
    fn conservation_check_reports_workload_violation() {
        use crate::{EndpointDesc, Request};
        use rinval::{TxResult, Txn};
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build();
        let bank = crate::bank::BankService::setup(&stm, 4, 100);
        let mut out = Vec::new();
        check_conservation(&stm, &bank, &mut out);
        assert!(out.is_empty(), "{out:?}");

        struct Broken;
        impl Workload for Broken {
            fn endpoints(&self) -> &'static [EndpointDesc] {
                &[]
            }
            fn apply(&self, _tx: &mut Txn<'_>, _req: &Request) -> TxResult<u64> {
                unreachable!()
            }
            fn query(&self, _tx: &mut Txn<'_>, _req: &Request) -> TxResult<u64> {
                unreachable!()
            }
            fn verify(&self, _stm: &Stm) -> Result<(), String> {
                Err("synthetic breakage".into())
            }
        }
        let mut out = Vec::new();
        check_conservation(&stm, &Broken, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("synthetic breakage"), "{out:?}");
    }
}
