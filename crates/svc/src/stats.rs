//! Service-layer telemetry: lifecycle counters and per-endpoint windowed
//! log₂ latency histograms.
//!
//! The histogram mirrors the bucket convention of
//! [`rinval::ServerStats::commit_latency`] (bucket `i` counts observations
//! in `[2^i, 2^(i+1))` ns, quantiles report the bucket's upper edge) but
//! adds a *rotating window*: every `window` observations the current
//! buckets are drained and their p50/p99 cached, so the admission gate
//! reads a recent signal with one relaxed load instead of walking 32
//! buckets per request. A cached breach goes *stale* after a TTL — once
//! shedding stops the flow of fresh write latencies, the stale signal must
//! not shed forever, so probe writes are re-admitted to re-measure
//! (DESIGN.md §17).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Adds to a relaxed counter (all svc counters are statistics, never
/// synchronization).
#[inline]
pub(crate) fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Lifecycle counters for one service instance. Field order follows a
/// request's path: admission, execution, reply.
#[derive(Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub enqueue_faults: AtomicU64,
    pub enqueue_drops: AtomicU64,
    pub shed_writes: AtomicU64,
    pub expired_on_dequeue: AtomicU64,
    pub executed_writes: AtomicU64,
    pub executed_reads: AtomicU64,
    pub dedup_hits: AtomicU64,
    pub stale_duplicates: AtomicU64,
    pub exec_timeouts: AtomicU64,
    pub client_timeouts: AtomicU64,
    pub late_replies: AtomicU64,
    pub dropped_replies: AtomicU64,
    pub worker_deaths: AtomicU64,
    pub worker_respawns: AtomicU64,
    pub shutdown_replies: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> SvcStats {
        SvcStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            enqueue_faults: self.enqueue_faults.load(Ordering::Relaxed),
            enqueue_drops: self.enqueue_drops.load(Ordering::Relaxed),
            shed_writes: self.shed_writes.load(Ordering::Relaxed),
            expired_on_dequeue: self.expired_on_dequeue.load(Ordering::Relaxed),
            executed_writes: self.executed_writes.load(Ordering::Relaxed),
            executed_reads: self.executed_reads.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            stale_duplicates: self.stale_duplicates.load(Ordering::Relaxed),
            exec_timeouts: self.exec_timeouts.load(Ordering::Relaxed),
            client_timeouts: self.client_timeouts.load(Ordering::Relaxed),
            late_replies: self.late_replies.load(Ordering::Relaxed),
            dropped_replies: self.dropped_replies.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            shutdown_replies: self.shutdown_replies.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time snapshot of the service lifecycle counters
/// ([`crate::Frontend::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SvcStats {
    /// Requests admitted into a mailbox.
    pub accepted: u64,
    /// Requests rejected at the door because the target mailbox was full.
    pub rejected_full: u64,
    /// Requests rejected by an armed `svc.enqueue` `fail` failpoint.
    pub enqueue_faults: u64,
    /// Requests accepted-then-lost by an armed `svc.enqueue` `exit`
    /// failpoint (the client observes a timeout).
    pub enqueue_drops: u64,
    /// Write requests shed by the admission gate (SLO breach or
    /// backpressure) — answered `RetryAfter` without entering the STM.
    pub shed_writes: u64,
    /// Requests whose deadline had already passed at dequeue — answered
    /// `Timeout` without entering the STM.
    pub expired_on_dequeue: u64,
    /// Write requests that ran a transaction (fresh applies + dedup hits).
    pub executed_writes: u64,
    /// Read requests served (always via `run_ro`).
    pub executed_reads: u64,
    /// Retried idempotency keys answered from the dedup window instead of
    /// re-applying — the exactly-once mechanism firing.
    pub dedup_hits: u64,
    /// Duplicates older than the whole dedup window (answered with
    /// [`crate::STALE_DUPLICATE`]).
    pub stale_duplicates: u64,
    /// Write transactions that hit their deadline inside
    /// `try_run_for` (answered `Timeout`).
    pub exec_timeouts: u64,
    /// Client-side waits that hit the deadline before any reply.
    pub client_timeouts: u64,
    /// Worker replies delivered after the client abandoned the slot
    /// (value dropped; the committed effect is recoverable via retry).
    pub late_replies: u64,
    /// Replies deliberately dropped by an armed `svc.reply.pre` `exit`
    /// failpoint.
    pub dropped_replies: u64,
    /// Worker threads that died (panic or injected exit).
    pub worker_deaths: u64,
    /// Workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Envelopes answered `Shutdown` while draining at service stop.
    pub shutdown_replies: u64,
}

/// log₂ latency histogram with a rotating window and cached quantiles.
pub(crate) struct WindowHist {
    window: u64,
    cur: [AtomicU64; 32],
    cur_count: AtomicU64,
    life: [AtomicU64; 32],
    life_count: AtomicU64,
    cached_p50_ns: AtomicU64,
    cached_p99_ns: AtomicU64,
    /// Nanoseconds since service start at the last rotation.
    rotated_at_ns: AtomicU64,
    rotating: Mutex<()>,
}

/// Quantile over a drained bucket array: the upper edge of the bucket
/// containing rank `ceil(q·total)` (same convention as
/// [`rinval::ServerStats::latency_quantile_ns`]).
pub(crate) fn quantile_ns(buckets: &[u64; 32], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Some(1u64 << (i as u32 + 1).min(63));
        }
    }
    None
}

impl WindowHist {
    pub(crate) fn new(window: u64) -> WindowHist {
        WindowHist {
            window: window.max(1),
            cur: std::array::from_fn(|_| AtomicU64::new(0)),
            cur_count: AtomicU64::new(0),
            life: std::array::from_fn(|_| AtomicU64::new(0)),
            life_count: AtomicU64::new(0),
            cached_p50_ns: AtomicU64::new(0),
            cached_p99_ns: AtomicU64::new(0),
            rotated_at_ns: AtomicU64::new(0),
            rotating: Mutex::new(()),
        }
    }

    /// Records one latency observation; `now_ns` is nanoseconds since
    /// service start (used to timestamp a rotation).
    pub(crate) fn record(&self, lat: Duration, now_ns: u64) {
        let ns = lat.as_nanos() as u64;
        let bucket = (ns.max(1).ilog2() as usize).min(31);
        self.cur[bucket].fetch_add(1, Ordering::Relaxed);
        self.life[bucket].fetch_add(1, Ordering::Relaxed);
        self.life_count.fetch_add(1, Ordering::Relaxed);
        if self.cur_count.fetch_add(1, Ordering::Relaxed) + 1 >= self.window {
            self.rotate(now_ns);
        }
    }

    /// Drains the current window and refreshes the cached quantiles. The
    /// try-lock makes rotation single-writer without ever blocking the
    /// recording fast path.
    fn rotate(&self, now_ns: u64) {
        let Ok(_g) = self.rotating.try_lock() else {
            return;
        };
        let drained: [u64; 32] = std::array::from_fn(|i| self.cur[i].swap(0, Ordering::Relaxed));
        self.cur_count.store(0, Ordering::Relaxed);
        if let Some(p50) = quantile_ns(&drained, 0.50) {
            self.cached_p50_ns.store(p50, Ordering::Relaxed);
        }
        if let Some(p99) = quantile_ns(&drained, 0.99) {
            self.cached_p99_ns.store(p99, Ordering::Relaxed);
        }
        self.rotated_at_ns.store(now_ns, Ordering::Relaxed);
    }

    /// True while the *recent* window's p99 breaches `slo_ns`. A cached
    /// breach older than `ttl_ns` reads as healthy so probe traffic can
    /// refresh the signal (see module docs).
    pub(crate) fn breached(&self, slo_ns: u64, now_ns: u64, ttl_ns: u64) -> bool {
        let p99 = self.cached_p99_ns.load(Ordering::Relaxed);
        if p99 == 0 || p99 <= slo_ns {
            return false;
        }
        now_ns.saturating_sub(self.rotated_at_ns.load(Ordering::Relaxed)) <= ttl_ns
    }

    /// Lifetime bucket snapshot (for reports and recovery monitoring).
    pub(crate) fn lifetime(&self) -> [u64; 32] {
        std::array::from_fn(|i| self.life[i].load(Ordering::Relaxed))
    }

    /// Total observations ever recorded.
    pub(crate) fn count(&self) -> u64 {
        self.life_count.load(Ordering::Relaxed)
    }

    pub(crate) fn cached_p50_ns(&self) -> u64 {
        self.cached_p50_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn cached_p99_ns(&self) -> u64 {
        self.cached_p99_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rotation_caches_quantiles() {
        let h = WindowHist::new(4);
        for _ in 0..3 {
            h.record(Duration::from_nanos(100), 10);
        }
        assert_eq!(h.cached_p99_ns(), 0, "rotated before the window filled");
        h.record(Duration::from_micros(100), 10);
        // 100ns → bucket 6 (upper edge 128); 100µs → bucket 16 (131072).
        assert_eq!(h.cached_p50_ns(), 128);
        assert_eq!(h.cached_p99_ns(), 131_072);
        assert_eq!(h.count(), 4);
        assert_eq!(h.lifetime().iter().sum::<u64>(), 4);
    }

    #[test]
    fn breach_signal_goes_stale_after_ttl() {
        let h = WindowHist::new(1);
        h.record(Duration::from_millis(40), 1_000);
        let slo = Duration::from_millis(5).as_nanos() as u64;
        assert!(h.breached(slo, 1_000, 500));
        // Same breach, sampled past the TTL: stale, reads healthy.
        assert!(!h.breached(slo, 2_000, 500));
        // A generous SLO is never breached.
        assert!(!h.breached(u64::MAX, 1_000, 500));
    }

    #[test]
    fn quantile_matches_engine_convention() {
        let mut b = [0u64; 32];
        b[0] = 2;
        b[9] = 1;
        b[31] = 1;
        assert_eq!(quantile_ns(&b, 0.5), Some(2));
        assert_eq!(quantile_ns(&b, 0.99), Some(1u64 << 32));
        assert_eq!(quantile_ns(&[0; 32], 0.5), None);
    }
}
