//! The STAMP `vacation` workload as service endpoints, over the same
//! [`stamp::vacation::Database`] (and therefore the same conservation
//! invariants) the benchmark harness verifies.
//!
//! Candidate resource lists are derived deterministically from the request
//! args with the workload's own [`SplitMix`], so a retried request
//! examines the same resources — not that correctness depends on it (the
//! dedup window already guarantees a retry never re-applies), but it keeps
//! request semantics a pure function of the request.

use crate::{EndpointDesc, Request, Workload};
use stamp::vacation::{Config, Database};
use stamp::SplitMix;
use rinval::{Stm, TxResult, Txn};

/// `reserve(relation, customer, candidate_seed)` — write; returns 1 if a
/// resource was reserved, 0 if everything examined was sold out.
pub const EP_RESERVE: u8 = 0;
/// `release(customer)` — write; refunds (zeroes) the customer's bill.
pub const EP_RELEASE: u8 = 1;
/// `reprice(relation, resource_seed, price_seed)` — write; manager
/// re-price of one resource.
pub const EP_REPRICE: u8 = 2;
/// `quote(relation, candidate_seed)` — read; cheapest in-stock price among
/// the candidates, or [`crate::STALE_DUPLICATE`]-distinct sentinel
/// `u64::MAX - 1` when sold out.
pub const EP_QUOTE: u8 = 3;

/// Returned by `quote` when every candidate was sold out.
pub const QUOTE_SOLD_OUT: u64 = u64::MAX - 1;

const ENDPOINTS: &[EndpointDesc] = &[
    EndpointDesc {
        name: "reserve",
        writes: true,
    },
    EndpointDesc {
        name: "release",
        writes: true,
    },
    EndpointDesc {
        name: "reprice",
        writes: true,
    },
    EndpointDesc {
        name: "quote",
        writes: false,
    },
];

/// The travel-agency service: a vacation database plus its workload
/// parameters (candidate count, table sizes).
pub struct TravelService {
    /// The underlying STAMP database.
    pub db: Database,
    /// Workload geometry (resources, customers, queries per reservation).
    pub cfg: Config,
}

impl TravelService {
    /// Builds and populates the database (quiescent).
    pub fn setup(stm: &Stm, cfg: Config) -> TravelService {
        TravelService {
            db: Database::setup(stm, &cfg),
            cfg,
        }
    }

    /// Conservation invariants of the underlying database. Quiescent.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        self.db.verify(stm, &self.cfg)
    }

    /// Deterministic candidate list for a reservation/quote request.
    fn candidates(&self, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix::new(seed ^ 0x7255_4156); // "TRAV"-ish salt
        (0..self.cfg.queries)
            .map(|_| rng.below(self.cfg.resources))
            .collect()
    }
}

impl Workload for TravelService {
    fn endpoints(&self) -> &'static [EndpointDesc] {
        ENDPOINTS
    }

    fn apply(&self, tx: &mut Txn<'_>, req: &Request) -> TxResult<u64> {
        match req.endpoint {
            EP_RESERVE => {
                let rel = (req.args[0] % 3) as usize;
                let customer = req.args[1] % self.cfg.customers;
                let cands = self.candidates(req.args[2]);
                Ok(self.db.reserve(tx, rel, &cands, customer)? as u64)
            }
            EP_RELEASE => {
                let customer = req.args[0] % self.cfg.customers;
                self.db.delete_customer(tx, customer)?;
                Ok(0)
            }
            EP_REPRICE => {
                let rel = (req.args[0] % 3) as usize;
                let id = req.args[1] % self.cfg.resources;
                let price = 50 + req.args[2] % 450;
                self.db.update_price(tx, rel, id, price)?;
                Ok(price)
            }
            other => unreachable!("travel: unknown write endpoint {other}"),
        }
    }

    fn query(&self, tx: &mut Txn<'_>, req: &Request) -> TxResult<u64> {
        debug_assert_eq!(req.endpoint, EP_QUOTE);
        let rel = (req.args[0] % 3) as usize;
        let cands = self.candidates(req.args[1]);
        Ok(self.db.quote(tx, rel, &cands)?.unwrap_or(QUOTE_SOLD_OUT))
    }

    fn verify(&self, stm: &Stm) -> Result<(), String> {
        TravelService::verify(self, stm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    #[test]
    fn endpoints_conserve_database_invariants() {
        let cfg = Config {
            resources: 16,
            customers: 8,
            transactions: 0,
            ..Config::default()
        };
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 16).build();
        let svc = TravelService::setup(&stm, cfg);
        let mut th = stm.register_thread();
        let mk = |endpoint, args| Request {
            client: 0,
            key: 1,
            endpoint,
            args,
        };
        let quoted = th.run_ro(|tx| svc.query(tx, &mk(EP_QUOTE, [0, 7, 0, 0])));
        assert_ne!(quoted, QUOTE_SOLD_OUT, "fresh database has stock");
        let reserved = th.run(|tx| svc.apply(tx, &mk(EP_RESERVE, [0, 3, 7, 0])));
        assert_eq!(reserved, 1, "same candidates as the quote");
        th.run(|tx| svc.apply(tx, &mk(EP_RELEASE, [3, 0, 0, 0])));
        th.run(|tx| svc.apply(tx, &mk(EP_REPRICE, [1, 5, 9, 0])));
        svc.verify(&stm).unwrap();
    }
}
