//! Chaos soak: the closed-loop generator under a composite fault plan —
//! service-layer worker deaths and lost replies, plus an engine-level
//! invalidation-server kill — must end with a clean ledger (zero lost,
//! zero duplicated), intact conservation invariants, and the write p99
//! back under the SLO within the recovery window.
//!
//! `SVC_SOAK_SECS` scales the run (default 2 s — long enough for the
//! arm/disarm/recover phases, short enough for the tier-1 suite). CI's
//! service-chaos job additionally drives the `svc_loadgen` binary under
//! env-seeded fault plans.

#![cfg(feature = "failpoints")]

use rinval::AlgorithmKind;
use std::time::Duration;
use svc::loadgen::{self, Burst, ChaosConfig, LoadConfig};
use svc::oracle::{self, Allowances};
use svc::{bank, SvcConfig};

#[test]
fn chaos_soak_recovers_ledger_and_slo() {
    let secs: f64 = std::env::var("SVC_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let duration = Duration::from_secs_f64(secs);
    let stm = rinval::Stm::builder(AlgorithmKind::RInvalV3 {
        invalidators: 2,
        steps_ahead: 2,
    })
    .heap_words(1 << 18)
    .build();
    let service = bank::BankService::setup(&stm, 128, 10_000);
    let svc_cfg = SvcConfig {
        workers: 4,
        clients: 64,
        slo_p99: Duration::from_millis(250),
        ..SvcConfig::default()
    };
    let cfg = LoadConfig {
        clients: 8,
        duration,
        timeout: Duration::from_millis(200),
        write_pct: 60,
        keys: 128,
        zipf_s: 1.0,
        burst: Some(Burst {
            busy: Duration::from_millis(120),
            idle: Duration::from_millis(30),
        }),
        seed: 0xC405,
        chaos: Some(ChaosConfig {
            arm_at: duration.mul_f64(0.25),
            disarm_at: duration.mul_f64(0.60),
            spec: "svc.worker.death=exit:2;svc.reply.pre=panic:3".into(),
            kill_inval_server: true,
            recovery_window: duration + Duration::from_secs(10),
        }),
        ..LoadConfig::default()
    };
    let report = loadgen::run(&stm, &service, &svc_cfg, &cfg, &|_c, rng, hot, write| {
        if write {
            (bank::EP_TRANSFER, [hot, rng.below(128), 1 + rng.below(20), 0])
        } else if rng.below(8) == 0 {
            (bank::EP_AUDIT, [0; 4])
        } else {
            (bank::EP_BALANCE, [hot, 0, 0, 0])
        }
    });
    report.print();
    // The full oracle: ledger, conservation, engine quiescence, SLO
    // recovery — with the allowances this fault plan actually grants.
    let allow = Allowances::from_spec(
        &cfg.chaos.as_ref().unwrap().spec,
        /* kill_inval_server = */ true,
    );
    let violations = oracle::check_all(&stm, &service, &report, &allow);
    assert!(violations.is_empty(), "oracle violations: {violations:#?}");
    // The drills actually fired: deaths were injected and survived.
    assert!(report.svc.worker_deaths >= 1, "no worker death injected");
    assert!(report.svc.worker_respawns >= 1, "no worker respawned");
    // The engine-level kill composes: the invalidation-server death was
    // absorbed (respawn or degradation) without corrupting the ledger.
    assert!(
        report.server.any_recovery_activity(),
        "engine-level fault left no trace"
    );
}
