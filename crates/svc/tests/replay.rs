//! Replay-determinism gate: the same `CHAOS1` repro token run twice must
//! produce bit-identical fault journals (equal digests and fire counts)
//! and the same oracle verdict — across every engine.
//!
//! This is the property the whole record/replay design rests on: budgets
//! are keyed to hit *indexes* (not racy decrements) and the journal digest
//! is an order-insensitive fold, so determinism holds even with concurrent
//! clients and workers as long as the run is ops-bounded. Probabilistic
//! sites additionally need stable per-site hit *counts*, which the
//! single-client/single-worker case pins down (DESIGN.md §18).

#![cfg(feature = "failpoints")]

use rinval::AlgorithmKind;
use svc::chaos::{Episode, PlanSpec, WorkloadKind};

fn all_kinds() -> [AlgorithmKind; 9] {
    [
        AlgorithmKind::CoarseLock,
        AlgorithmKind::Tml,
        AlgorithmKind::NOrec,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV1,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
        AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 2,
        },
        AlgorithmKind::RInvalMV {
            invalidators: 2,
            steps_ahead: 2,
        },
        AlgorithmKind::Tl2,
    ]
}

/// Runs the episode twice (each time from a fresh STM and service) and
/// asserts identical journals and verdicts.
fn assert_replays(ep: &Episode) {
    // The token is the actual replay surface: round-trip through it, the
    // way `svc_loadgen --replay` would.
    let parsed = Episode::parse_token(&ep.token()).expect("token round-trip");
    assert_eq!(&parsed, ep, "token did not reproduce the episode");
    let a = parsed.run();
    let b = parsed.run();
    assert_eq!(
        (a.fires, a.digest),
        (b.fires, b.digest),
        "journals diverged for {}:\n  first  : {:?}\n  second : {:?}",
        ep.token(),
        a.report,
        b.report
    );
    assert_eq!(
        a.passed(),
        b.passed(),
        "verdicts diverged for {}: {:?} vs {:?}",
        ep.token(),
        a.violations,
        b.violations
    );
    assert!(
        a.passed(),
        "budget-bounded drill should pass the oracle: {:?}",
        a.violations
    );
    assert!(a.fires > 0, "the plan never fired — the gate is vacuous");
}

#[test]
fn replay_is_deterministic_across_all_engines() {
    for kind in all_kinds() {
        let ep = Episode {
            algo: kind,
            workload: WorkloadKind::Bank,
            seed: 0x9E37 ^ kind.name().len() as u64,
            clients: 2,
            ops_per_client: 30,
            write_pct: 70,
            workers: 2,
            timeout_ms: 100,
            plan: PlanSpec::parse("svc.reply.pre=exit:2;svc.worker.death=exit:1"),
            ..Episode::default()
        };
        assert_replays(&ep);
    }
}

#[test]
fn replay_is_deterministic_with_probabilistic_sites() {
    // Prob sites fire on draws keyed to hit indexes, so determinism needs
    // stable hit counts: one client, one worker (no concurrent attempts).
    let ep = Episode {
        algo: AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 2,
        },
        workload: WorkloadKind::Bank,
        seed: 0xD1CE,
        clients: 1,
        ops_per_client: 40,
        write_pct: 100,
        workers: 1,
        timeout_ms: 100,
        plan: PlanSpec::parse("svc.reply.pre=prob(0.35,exit):16"),
        ..Episode::default()
    };
    let first = ep.run();
    assert_replays(&ep);
    // And the digest is a pure function of the seed: a different episode
    // seed draws a different fired set.
    let reseeded = Episode {
        seed: 0xD1CF,
        ..ep.clone()
    };
    let other = reseeded.run();
    assert_ne!(
        first.digest, other.digest,
        "independent seeds produced identical journals (digest stuck?)"
    );
}

#[test]
fn travel_workload_replays_too() {
    let ep = Episode {
        algo: AlgorithmKind::NOrec,
        workload: WorkloadKind::Travel,
        seed: 0x7EAE,
        clients: 2,
        ops_per_client: 25,
        write_pct: 60,
        workers: 2,
        timeout_ms: 100,
        plan: PlanSpec::parse("svc.mailbox.pop=exit:2"),
        ..Episode::default()
    };
    assert_replays(&ep);
}

/// Spot-check that fault-journal determinism is independent of the scan
/// kernel dispatch: the same episode under the scalar reference cores
/// must still self-replay (CI runs this suite under
/// `--features failpoints,scan-kernel-scalar`).
#[test]
#[cfg(feature = "scan-kernel-scalar")]
fn replay_is_deterministic_under_scalar_scan_kernels() {
    let ep = Episode {
        algo: AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 2,
        },
        workload: WorkloadKind::Bank,
        seed: 0x5CA1A2,
        clients: 2,
        ops_per_client: 30,
        write_pct: 70,
        workers: 2,
        timeout_ms: 100,
        plan: PlanSpec::parse("svc.reply.pre=exit:2;server.inval.lag=delay(1):2"),
        ..Episode::default()
    };
    assert_replays(&ep);
}

#[test]
fn canary_episode_fails_and_shrinks_to_at_most_two_sites() {
    use rinval::faults::{site, FaultAction};
    use std::time::Duration;
    use svc::chaos::{shrink, PlanEntry};

    // The inverted gate the CI canary runs: an unbounded reply-eating
    // fault with the dedup window disabled must violate the ledger, and
    // the shrinker must strip the decoy sites from the plan.
    let fatal = Episode {
        algo: AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 2,
        },
        workload: WorkloadKind::Bank,
        seed: 0xBAD,
        clients: 2,
        ops_per_client: 10,
        write_pct: 100,
        workers: 2,
        timeout_ms: 25,
        max_write_tries: 4,
        dedup: false,
        plan: PlanSpec {
            entries: vec![
                PlanEntry {
                    site: site::SVC_REPLY_PRE,
                    action: FaultAction::Exit,
                    times: None,
                },
                PlanEntry {
                    site: site::SVC_ENQUEUE,
                    action: FaultAction::Delay(Duration::from_millis(1)),
                    times: Some(2),
                },
            ],
        },
        ..Episode::default()
    };
    let outcome = fatal.run();
    assert!(
        !outcome.passed(),
        "the dedup-disabled canary must violate the ledger"
    );
    assert!(
        outcome.violations.iter().any(|v| v.starts_with("ledger:")),
        "{:?}",
        outcome.violations
    );
    let (min_ep, min_out) = shrink(&fatal, 30, |_, _, _| {});
    assert!(!min_out.passed());
    assert!(
        min_ep.plan.entries.len() <= 2,
        "shrink left {} armed sites: {}",
        min_ep.plan.entries.len(),
        min_ep.plan.render()
    );
    // The minimal episode still names the actual culprit.
    assert!(
        min_ep
            .plan
            .entries
            .iter()
            .any(|e| e.site == site::SVC_REPLY_PRE),
        "shrink dropped the fatal site: {}",
        min_ep.plan.render()
    );
    // And its token replays to the same verdict.
    let replayed = Episode::parse_token(&min_ep.token()).unwrap().run();
    assert!(!replayed.passed());
    assert_eq!(replayed.digest, min_out.digest, "minimal token diverged");
}
