//! Service lifecycle tests: exactly-once retries, deadlines, admission
//! control — always-compiled half, plus the `failpoints`-gated fault
//! drills (lost replies, worker death between commit and reply).

use rinval::{AlgorithmKind, Stm};
use std::time::Duration;
use svc::{bank, serve, Request, SvcConfig, SvcError};

fn all_kinds() -> [AlgorithmKind; 9] {
    [
        AlgorithmKind::CoarseLock,
        AlgorithmKind::Tml,
        AlgorithmKind::NOrec,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV1,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
        AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 2,
        },
        AlgorithmKind::RInvalMV {
            invalidators: 2,
            steps_ahead: 2,
        },
        AlgorithmKind::Tl2,
    ]
}

fn transfer(client: u64, key: u64, from: u64, to: u64, amount: u64) -> Request {
    Request {
        client,
        key,
        endpoint: bank::EP_TRANSFER,
        args: [from, to, amount, 0],
    }
}

fn audit(client: u64) -> Request {
    Request {
        client,
        key: 0,
        endpoint: bank::EP_AUDIT,
        args: [0; 4],
    }
}

const TIMEOUT: Duration = Duration::from_secs(5);

/// Round trip on every engine: writes apply once, reads see them, the
/// ledger and the conservation invariant agree.
#[test]
fn round_trip_on_every_engine() {
    for kind in all_kinds() {
        let stm = Stm::builder(kind).heap_words(1 << 14).build();
        let bank = bank::BankService::setup(&stm, 16, 1_000);
        serve(&stm, &bank, &SvcConfig::default(), |front| {
            assert_eq!(front.call(transfer(3, 1, 0, 1, 250), TIMEOUT), Ok(250));
            assert_eq!(front.call(audit(5), TIMEOUT), Ok(16_000), "{kind:?}");
            assert_eq!(
                front.call(
                    Request {
                        client: 2,
                        key: 0,
                        endpoint: bank::EP_BALANCE,
                        args: [1, 0, 0, 0],
                    },
                    TIMEOUT,
                ),
                Ok(1_250),
                "{kind:?}"
            );
            assert_eq!(front.applied_ops(3), 1);
        });
        bank.verify(&stm).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
}

/// A duplicate idempotency key is never re-applied: the recorded result
/// comes back and the ledger does not advance. On every engine.
#[test]
fn duplicate_keys_are_exactly_once_on_every_engine() {
    for kind in all_kinds() {
        let stm = Stm::builder(kind).heap_words(1 << 14).build();
        let bank = bank::BankService::setup(&stm, 8, 1_000);
        serve(&stm, &bank, &SvcConfig::default(), |front| {
            let req = transfer(1, 1, 2, 3, 100);
            assert_eq!(front.call(req, TIMEOUT), Ok(100), "{kind:?}");
            for _ in 0..3 {
                // Byte-identical retries: answered from the dedup window.
                assert_eq!(front.call(req, TIMEOUT), Ok(100), "{kind:?}");
            }
            assert_eq!(front.applied_ops(1), 1, "{kind:?}: duplicate applied");
            assert!(front.stats().dedup_hits >= 3, "{kind:?}");
            // Balance moved exactly once.
            assert_eq!(
                front.call(
                    Request {
                        client: 0,
                        key: 0,
                        endpoint: bank::EP_BALANCE,
                        args: [3, 0, 0, 0],
                    },
                    TIMEOUT,
                ),
                Ok(1_100),
                "{kind:?}"
            );
        });
        bank.verify(&stm).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
}

/// An expired deadline is answered `Timeout` without executing, and the
/// retry of the same key resolves it exactly once.
#[test]
fn zero_deadline_times_out_then_retry_applies_once() {
    let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
        .heap_words(1 << 14)
        .build();
    let bank = bank::BankService::setup(&stm, 8, 1_000);
    serve(&stm, &bank, &SvcConfig::default(), |front| {
        let req = transfer(0, 1, 0, 1, 50);
        assert_eq!(front.call(req, Duration::ZERO), Err(SvcError::Timeout));
        // The operation may or may not have applied (here: not, the
        // deadline was past before dequeue). The retry decides it.
        assert_eq!(front.call(req, TIMEOUT), Ok(50));
        assert_eq!(front.applied_ops(0), 1);
        let stats = front.stats();
        assert!(stats.client_timeouts >= 1);
    });
    bank.verify(&stm).unwrap();
}

/// A panic inside the serve closure must come back out as a panic (a
/// failing assertion stays a test failure), not hang `serve` joining a
/// supervisor that never learns about shutdown.
#[test]
fn panicking_closure_propagates_instead_of_hanging() {
    let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build();
    let bank = bank::BankService::setup(&stm, 4, 100);
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve(&stm, &bank, &SvcConfig::default(), |_front| -> () {
            panic!("deliberate closure panic")
        })
    }));
    assert!(out.is_err(), "the closure panic must escape serve()");
}

/// A dedup table too large for the u32 handle index space is refused up
/// front instead of silently aliasing rows.
#[test]
#[should_panic(expected = "u32 handle index space")]
fn oversized_dedup_table_panics_up_front() {
    let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build();
    let bank = bank::BankService::setup(&stm, 4, 100);
    let cfg = SvcConfig {
        clients: 1 << 40,
        ..SvcConfig::default()
    };
    serve(&stm, &bank, &cfg, |_front| {});
}

/// A read endpoint that sleeps: wedges a worker for a controlled time so
/// mailbox overflow is deterministic.
struct Sleepy;

impl svc::Workload for Sleepy {
    fn endpoints(&self) -> &'static [svc::EndpointDesc] {
        &[svc::EndpointDesc {
            name: "nap",
            writes: false,
        }]
    }

    fn apply(&self, _tx: &mut rinval::Txn<'_>, _req: &Request) -> rinval::TxResult<u64> {
        unreachable!("sleepy has no write endpoints")
    }

    fn query(&self, _tx: &mut rinval::Txn<'_>, req: &Request) -> rinval::TxResult<u64> {
        std::thread::sleep(Duration::from_millis(req.args[0]));
        Ok(0)
    }
}

/// A full mailbox rejects with `RetryAfter` at the door: one worker
/// wedged behind a slow request, `mailbox_cap` envelopes queued behind
/// it, and the overflow is told to come back.
#[test]
fn full_mailbox_rejects_retry_after() {
    let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build();
    let cfg = SvcConfig {
        workers: 1,
        mailbox_cap: 2,
        ..SvcConfig::default()
    };
    serve(&stm, &Sleepy, &cfg, |front| {
        let nap = |ms: u64| Request {
            client: 0,
            key: 0,
            endpoint: 0,
            args: [ms, 0, 0, 0],
        };
        std::thread::scope(|s| {
            // The worker dequeues this immediately and naps on it…
            s.spawn(move || {
                let _ = front.call(nap(600), Duration::from_secs(5));
            });
            std::thread::sleep(Duration::from_millis(100));
            // …so these two fill the (empty) mailbox behind it…
            for _ in 0..2 {
                s.spawn(move || {
                    let _ = front.call(nap(0), Duration::from_secs(5));
                });
            }
            std::thread::sleep(Duration::from_millis(100));
            // …and the overflow is rejected at the door.
            assert_eq!(
                front.call(nap(0), Duration::from_secs(5)),
                Err(SvcError::RetryAfter)
            );
            assert!(front.stats().rejected_full >= 1);
        });
    });
}

/// SLO admission control: with an unmeetable SLO, the first executed
/// write flips the gate and subsequent writes are shed — while reads keep
/// being served (`run_ro` degraded mode). After `breach_ttl` the signal
/// goes stale and probe writes are admitted again.
#[test]
fn slo_breach_sheds_writes_but_serves_reads() {
    let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
        .heap_words(1 << 14)
        .build();
    let bank = bank::BankService::setup(&stm, 8, 1_000);
    let cfg = SvcConfig {
        workers: 1,
        slo_p99: Duration::from_nanos(1), // unmeetable: every window breaches
        hist_window: 1,                   // cache refreshes on every write
        breach_ttl: Duration::from_millis(250),
        ..SvcConfig::default()
    };
    serve(&stm, &bank, &cfg, |front| {
        assert_eq!(front.call(transfer(0, 1, 0, 1, 10), TIMEOUT), Ok(10));
        assert!(front.shedding_writes(), "breached window did not trip the gate");
        assert_eq!(
            front.call(transfer(0, 2, 0, 1, 10), TIMEOUT),
            Err(SvcError::RetryAfter),
            "write not shed under breach"
        );
        // Degraded mode: reads still flow.
        assert_eq!(front.call(audit(1), TIMEOUT), Ok(8_000));
        assert!(front.stats().shed_writes >= 1);
        // The stale breach re-admits probe writes.
        std::thread::sleep(cfg.breach_ttl + Duration::from_millis(50));
        assert!(!front.shedding_writes(), "breach signal never went stale");
        assert_eq!(front.call(transfer(0, 2, 0, 1, 10), TIMEOUT), Ok(10));
    });
    bank.verify(&stm).unwrap();
}

/// The backpressure half of the gate: a zero pending-threshold sheds every
/// write regardless of latency.
#[test]
fn backpressure_threshold_sheds_writes() {
    let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 14).build();
    let bank = bank::BankService::setup(&stm, 8, 1_000);
    let cfg = SvcConfig {
        shed_pending: 0,
        ..SvcConfig::default()
    };
    serve(&stm, &bank, &cfg, |front| {
        assert_eq!(
            front.call(transfer(0, 1, 0, 1, 10), TIMEOUT),
            Err(SvcError::RetryAfter)
        );
        assert_eq!(front.call(audit(0), TIMEOUT), Ok(8_000), "reads must survive");
    });
}

#[cfg(feature = "failpoints")]
mod drills {
    use super::*;
    use proptest::prelude::*;
    use rinval::faults::site;
    use rinval::FaultAction;

    const RETRY_TIMEOUT: Duration = Duration::from_millis(100);

    /// Calls until acknowledged, retrying the same key — the closed-loop
    /// client discipline. Returns the acknowledged value.
    fn call_until_acked(front: &svc::Frontend<'_, '_>, req: Request) -> u64 {
        for _ in 0..1_000 {
            match front.call(req, RETRY_TIMEOUT) {
                Ok(v) => return v,
                Err(SvcError::Shutdown) => panic!("service shut down mid-retry"),
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        panic!("request never acknowledged");
    }

    /// Kill-every-reply: every fresh apply drops its reply, so every
    /// operation is acknowledged through the dedup window — exactly once,
    /// on every engine.
    #[test]
    fn lost_replies_recover_exactly_once_on_every_engine() {
        for kind in all_kinds() {
            let stm = Stm::builder(kind).heap_words(1 << 14).build();
            let bank = bank::BankService::setup(&stm, 8, 1_000);
            stm.faults()
                .arm(site::SVC_REPLY_PRE, FaultAction::Exit, None);
            serve(&stm, &bank, &SvcConfig::default(), |front| {
                for key in 1..=5u64 {
                    let v = call_until_acked(front, transfer(0, key, 0, 1, 10));
                    assert_eq!(v, 10, "{kind:?}");
                }
                assert_eq!(front.applied_ops(0), 5, "{kind:?}: ledger drifted");
                let stats = front.stats();
                assert!(stats.dropped_replies >= 5, "{kind:?}");
                assert!(stats.dedup_hits >= 5, "{kind:?}: recovery bypassed dedup");
            });
            stm.faults().disarm(site::SVC_REPLY_PRE);
            bank.verify(&stm).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    /// Worker killed between commit and reply: the supervisor respawns it
    /// and the retry is answered from the dedup window. The committed
    /// effect survives the crash exactly once.
    #[test]
    fn worker_death_after_commit_recovers_via_respawn_and_dedup() {
        let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
            .heap_words(1 << 14)
            .build();
        let bank = bank::BankService::setup(&stm, 8, 1_000);
        stm.faults()
            .arm(site::SVC_REPLY_PRE, FaultAction::Panic, Some(1));
        serve(&stm, &bank, &SvcConfig::default(), |front| {
            let v = call_until_acked(front, transfer(0, 1, 2, 3, 77));
            assert_eq!(v, 77);
            assert_eq!(front.applied_ops(0), 1);
            let stats = front.stats();
            assert!(stats.worker_deaths >= 1, "panic did not kill the worker");
            assert!(stats.worker_respawns >= 1, "worker was not respawned");
            assert!(stats.dedup_hits >= 1, "recovery bypassed the dedup window");
        });
        bank.verify(&stm).unwrap();
    }

    /// Injected worker exits at the top of the loop: mailboxes survive the
    /// deaths and service continues on respawned workers.
    #[test]
    fn injected_worker_exits_are_respawned() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 14).build();
        let bank = bank::BankService::setup(&stm, 8, 1_000);
        stm.faults()
            .arm(site::SVC_WORKER_DEATH, FaultAction::Exit, Some(2));
        serve(&stm, &bank, &SvcConfig::default(), |front| {
            for key in 1..=4u64 {
                assert_eq!(call_until_acked(front, transfer(0, key, 0, 1, 5)), 5);
            }
            assert_eq!(front.applied_ops(0), 4);
        });
        bank.verify(&stm).unwrap();
    }

    /// Enqueue faults: `fail` looks like load shed, `exit` loses the
    /// accepted request — and the retry of the same key stays exactly-once.
    #[test]
    fn enqueue_faults_reject_or_lose_but_never_duplicate() {
        let stm = Stm::builder(AlgorithmKind::RInvalV1).heap_words(1 << 14).build();
        let bank = bank::BankService::setup(&stm, 8, 1_000);
        let cfg = SvcConfig::default();
        serve(&stm, &bank, &cfg, |front| {
            stm.faults().arm(site::SVC_ENQUEUE, FaultAction::Fail, Some(1));
            let req = transfer(0, 1, 0, 1, 9);
            assert_eq!(front.call(req, RETRY_TIMEOUT), Err(SvcError::RetryAfter));
            stm.faults().arm(site::SVC_ENQUEUE, FaultAction::Exit, Some(1));
            assert_eq!(front.call(req, RETRY_TIMEOUT), Err(SvcError::Timeout));
            // Both faults consumed; the plain retry resolves the key.
            assert_eq!(call_until_acked(front, req), 9);
            assert_eq!(front.applied_ops(0), 1);
            let stats = front.stats();
            assert_eq!(stats.enqueue_faults, 1);
            assert_eq!(stats.enqueue_drops, 1);
        });
        bank.verify(&stm).unwrap();
    }

    // The property: a client retrying *every* request with the same
    // idempotency key under a kill-every-reply fault plan observes
    // exactly-once effects — on all 9 engines.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn retried_ops_under_kill_every_reply_are_exactly_once(
            ops in prop::collection::vec((0u64..8, 0u64..8, 1u64..40), 1..8),
        ) {
            for kind in all_kinds() {
                let stm = Stm::builder(kind).heap_words(1 << 14).build();
                let bank = bank::BankService::setup(&stm, 8, 1_000);
                stm.faults().arm(site::SVC_REPLY_PRE, FaultAction::Exit, None);
                serve(&stm, &bank, &SvcConfig::default(), |front| {
                    let mut key = 0u64;
                    for &(from, to, amount) in &ops {
                        key += 1;
                        let req = transfer(1, key, from, to, amount);
                        // First try loses its reply; keep retrying the key.
                        let v = call_until_acked(front, req);
                        // The value each retry returns is the recorded one.
                        prop_assert_eq!(call_until_acked(front, req), v, "{:?}", kind);
                    }
                    prop_assert_eq!(front.applied_ops(1), ops.len() as u64, "{:?}", kind);
                    Ok(())
                })?;
                stm.faults().disarm(site::SVC_REPLY_PRE);
                prop_assert!(bank.verify(&stm).is_ok(), "{:?}", kind);
            }
        }
    }
}
