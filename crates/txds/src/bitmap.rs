//! Transactional bitmap.
//!
//! Backs `labyrinth`'s grid-claiming step and `ssca2`'s visited sets: a
//! claim transaction tests and sets many bits atomically. Bits are packed
//! 64 per heap word, so neighbouring bits share a word — adjacent claims
//! conflict, exactly like the C original's adjacency conflicts.

use rinval::{Handle, Stm, TxResult, Txn};

/// A fixed-size shared transactional bitmap.
#[derive(Clone, Copy, Debug)]
pub struct TBitmap {
    words: Handle,
    nbits: u64,
}

impl TBitmap {
    /// Creates a bitmap of `nbits` zeroed bits.
    pub fn new(stm: &Stm, nbits: u64) -> TBitmap {
        let nwords = nbits.div_ceil(64).max(1);
        TBitmap {
            words: stm.alloc(nwords as usize),
            nbits,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> u64 {
        self.nbits
    }

    /// True if the bitmap has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    #[inline]
    fn cell(&self, bit: u64) -> Handle {
        assert!(bit < self.nbits, "bit {bit} out of range {}", self.nbits);
        self.words.field((bit / 64) as u32)
    }

    /// Reads bit `bit`.
    pub fn test(&self, tx: &mut Txn<'_>, bit: u64) -> TxResult<bool> {
        Ok(tx.read(self.cell(bit))? & (1u64 << (bit % 64)) != 0)
    }

    /// Sets bit `bit`; returns `false` if it was already set.
    pub fn set(&self, tx: &mut Txn<'_>, bit: u64) -> TxResult<bool> {
        let cell = self.cell(bit);
        let w = tx.read(cell)?;
        let mask = 1u64 << (bit % 64);
        if w & mask != 0 {
            return Ok(false);
        }
        tx.write(cell, w | mask)?;
        Ok(true)
    }

    /// Clears bit `bit`; returns `false` if it was already clear.
    pub fn clear(&self, tx: &mut Txn<'_>, bit: u64) -> TxResult<bool> {
        let cell = self.cell(bit);
        let w = tx.read(cell)?;
        let mask = 1u64 << (bit % 64);
        if w & mask == 0 {
            return Ok(false);
        }
        tx.write(cell, w & !mask)?;
        Ok(true)
    }

    /// Atomically claims every bit in `bits`: succeeds (and sets them all)
    /// only if none was set; otherwise changes nothing and returns `false`.
    /// This is labyrinth's path-claim primitive.
    pub fn try_claim(&self, tx: &mut Txn<'_>, bits: &[u64]) -> TxResult<bool> {
        for &b in bits {
            if self.test(tx, b)? {
                return Ok(false);
            }
        }
        for &b in bits {
            self.set(tx, b)?;
        }
        Ok(true)
    }

    /// The heap word holding `bit` — lets callers take *non-transactional*
    /// snapshots of whole words (labyrinth's racy grid copy; the later
    /// claim transaction revalidates, so staleness is safe).
    pub fn word_handle(&self, bit: u64) -> Handle {
        self.cell(bit)
    }

    /// Number of set bits. Quiescent only.
    pub fn popcount(&self, stm: &Stm) -> u64 {
        let nwords = self.nbits.div_ceil(64).max(1);
        (0..nwords)
            .map(|w| stm.peek(self.words.field(w as u32)).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    fn new_stm() -> Stm {
        Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 12).build()
    }

    #[test]
    fn set_test_clear() {
        let stm = new_stm();
        let bm = TBitmap::new(&stm, 200);
        let mut th = stm.register_thread();
        assert!(!th.run(|tx| bm.test(tx, 70)));
        assert!(th.run(|tx| bm.set(tx, 70)));
        assert!(!th.run(|tx| bm.set(tx, 70)), "double set reports false");
        assert!(th.run(|tx| bm.test(tx, 70)));
        assert!(!th.run(|tx| bm.test(tx, 71)), "neighbour unaffected");
        assert!(th.run(|tx| bm.clear(tx, 70)));
        assert!(!th.run(|tx| bm.clear(tx, 70)));
        assert_eq!(bm.popcount(&stm), 0);
    }

    #[test]
    fn bits_across_word_boundaries() {
        let stm = new_stm();
        let bm = TBitmap::new(&stm, 130);
        let mut th = stm.register_thread();
        for b in [0u64, 63, 64, 127, 128, 129] {
            assert!(th.run(|tx| bm.set(tx, b)));
        }
        assert_eq!(bm.popcount(&stm), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let stm = new_stm();
        let bm = TBitmap::new(&stm, 10);
        let mut th = stm.register_thread();
        let _ = th.run(|tx| bm.test(tx, 10));
    }

    #[test]
    fn try_claim_is_all_or_nothing() {
        let stm = new_stm();
        let bm = TBitmap::new(&stm, 100);
        let mut th = stm.register_thread();
        assert!(th.run(|tx| bm.try_claim(tx, &[1, 2, 3])));
        // Overlapping claim fails and must not set the non-overlapping bits.
        assert!(!th.run(|tx| bm.try_claim(tx, &[3, 4, 5])));
        assert!(!th.run(|tx| bm.test(tx, 4)));
        assert!(!th.run(|tx| bm.test(tx, 5)));
        assert_eq!(bm.popcount(&stm), 3);
    }

    #[test]
    fn concurrent_claims_never_overlap() {
        let stm = Stm::builder(AlgorithmKind::InvalStm).heap_words(1 << 12).build();
        let bm = TBitmap::new(&stm, 256);
        let stm = &stm;
        let claimed: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    s.spawn(move || {
                        let mut th = stm.register_thread();
                        let mut mine = Vec::new();
                        let mut seed = t + 1;
                        for _ in 0..40 {
                            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let start = (seed >> 30) % 250;
                            let bits = [start, start + 1, start + 2];
                            if th.run(|tx| bm.try_claim(tx, &bits)) {
                                mine.extend_from_slice(&bits);
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = claimed.into_iter().flatten().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "two threads claimed the same bit");
        assert_eq!(bm.popcount(stm), total as u64);
    }
}
