//! Node allocation for transactional structures, atop the STM's native
//! allocation lifecycle.
//!
//! Historically the STM heap was a bump arena without reclamation, so
//! every structure carried an intrusive transactional free-list and
//! recycled its own nodes. The heap now has a first-class lifecycle —
//! [`Txn::alloc`] is surrendered on abort and [`Txn::free`] retires
//! blocks under the reclamation horizon — so this type is a thin typed
//! facade over it: `take` allocates, `put` frees. The old safety
//! properties (a node is never handed out twice; an aborted transaction
//! neither leaks nor resurrects a node) are now provided by the STM
//! itself, for every structure, with no shared list head to conflict on.

use rinval::{Handle, Stm, TxResult, Txn};

/// Allocates and frees fixed-size nodes through the STM's transactional
/// allocation lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct FreeList {
    /// Size in words of the nodes this list hands out.
    node_words: u32,
}

impl FreeList {
    /// Creates a node allocator for nodes of `node_words` words.
    ///
    /// The `Stm` argument is unused (kept for call-site compatibility with
    /// the free-list era, when the list head lived in the heap).
    pub fn new(_stm: &Stm, node_words: u32) -> FreeList {
        assert!(node_words >= 1);
        FreeList { node_words }
    }

    /// Returns a zeroed node: recycled from the thread's heap cache when a
    /// matured freed block of this size is available, freshly allocated
    /// otherwise. Unlike the old intrusive list, contents are guaranteed
    /// zero (the heap's `calloc` contract holds for recycled blocks too).
    pub fn take(&self, tx: &mut Txn<'_>) -> TxResult<Handle> {
        tx.alloc(self.node_words as usize)
    }

    /// Frees `node` (which must be `node_words` words and unreachable once
    /// this transaction commits). No-op if the transaction aborts.
    pub fn put(&self, tx: &mut Txn<'_>, node: Handle) -> TxResult<()> {
        tx.free(node, self.node_words as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    #[test]
    fn take_fresh_then_recycle() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 3);
        let mut th = stm.register_thread();

        let a = th.run(|tx| fl.take(tx));
        assert!(!a.is_null());
        th.run(|tx| fl.put(tx, a));

        // No other thread is live, so the freed block matures immediately
        // and the next take of the same size must recycle it.
        let b = th.run(|tx| fl.take(tx));
        assert_eq!(b, a, "freed node must be recycled");
        let st = stm.heap_stats();
        assert_eq!(st.freed_words, 3);
        assert_eq!(st.recycled_words, 3);
    }

    #[test]
    fn recycled_node_is_zeroed() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 2);
        let mut th = stm.register_thread();
        let a = th.run(|tx| {
            let n = fl.take(tx)?;
            tx.init(n.field(0), 11);
            tx.init(n.field(1), 22);
            Ok(n)
        });
        th.run(|tx| fl.put(tx, a));
        let b = th.run(|tx| fl.take(tx));
        assert_eq!(b, a);
        assert_eq!(stm.peek(b.field(0)), 0, "recycled node not zeroed");
        assert_eq!(stm.peek(b.field(1)), 0, "recycled node not zeroed");
    }

    #[test]
    fn aborted_take_is_surrendered_not_leaked() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 2);
        let mut th = stm.register_thread();
        // Warm up one block so sizes match.
        let a = th.run(|tx| fl.take(tx));
        th.run(|tx| fl.put(tx, a));
        let before = stm.heap_allocated();
        // Aborted takes surrender their node; repeated churn must not grow
        // the arena.
        for _ in 0..50 {
            let r: rinval::TxResult<()> = th.try_run(1, |tx| {
                let _ = fl.take(tx)?;
                tx.user_abort()
            });
            assert!(r.is_err());
        }
        assert_eq!(
            stm.heap_allocated(),
            before,
            "aborted takes leaked arena words"
        );
    }

    #[test]
    fn aborted_put_does_not_free() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 2);
        let mut th = stm.register_thread();
        let a = th.run(|tx| {
            let n = fl.take(tx)?;
            tx.init(n, 77);
            Ok(n)
        });
        let r: rinval::TxResult<()> = th.try_run(1, |tx| {
            fl.put(tx, a)?;
            tx.user_abort()
        });
        assert!(r.is_err());
        // The free was discarded with the abort: the node is still live and
        // must not be handed out again.
        let b = th.run(|tx| fl.take(tx));
        assert_ne!(b, a, "aborted free still recycled the node");
        assert_eq!(stm.peek(a), 77);
        assert_eq!(stm.heap_stats().freed_words, 0);
    }

    #[test]
    fn concurrent_take_put_never_double_hands_out() {
        let stm = Stm::builder(AlgorithmKind::InvalStm).heap_words(1 << 14).build();
        let fl = FreeList::new(&stm, 2);
        let stm = &stm;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for i in 0..100u64 {
                        let n = th.run(|tx| {
                            let n = fl.take(tx)?;
                            tx.write(n.field(1), i)?;
                            Ok(n)
                        });
                        // If two threads ever held the same node, one's tag
                        // write would clobber the other's before it put it
                        // back — detectable because we hold it privately.
                        let seen = th.run(|tx| tx.read(n.field(1)));
                        assert_eq!(seen, i);
                        th.run(|tx| fl.put(tx, n));
                    }
                });
            }
        });
    }
}
