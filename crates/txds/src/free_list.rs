//! A transactional free-list for node recycling.
//!
//! The STM heap is a bump-allocated arena without general reclamation, so
//! long-running structures recycle their own nodes: `remove` pushes the
//! node onto the structure's free-list *inside the same transaction*, and
//! later inserts pop from it. Because the push/pop are transactional, a
//! node is never handed out twice and never resurrected by an aborted
//! transaction.

use rinval::{Handle, Stm, TxResult, Txn};

/// Intrusive LIFO of fixed-size free nodes. The first word of a freed node
/// is reused as the `next` link, so nodes must be at least one word.
#[derive(Clone, Copy, Debug)]
pub struct FreeList {
    /// Cell holding the head-of-list node handle (0 = empty).
    head: Handle,
    /// Size in words of the nodes this list recycles.
    node_words: u32,
}

impl FreeList {
    /// Creates an empty free-list for nodes of `node_words` words.
    pub fn new(stm: &Stm, node_words: u32) -> FreeList {
        assert!(node_words >= 1);
        FreeList {
            head: stm.alloc_init(&[0]),
            node_words,
        }
    }

    /// Returns a node: recycled if available, freshly allocated otherwise.
    /// The node's contents are arbitrary; callers must initialize every
    /// field they later read.
    pub fn take(&self, tx: &mut Txn<'_>) -> TxResult<Handle> {
        let head = tx.read_handle(self.head)?;
        if head.is_null() {
            tx.alloc(self.node_words as usize)
        } else {
            let next = tx.read(head.field(0))?;
            tx.write(self.head, next)?;
            Ok(head)
        }
    }

    /// Recycles `node` (which must have come from [`FreeList::take`] on a
    /// list with the same `node_words`, and be unreachable after this
    /// transaction commits).
    pub fn put(&self, tx: &mut Txn<'_>, node: Handle) -> TxResult<()> {
        let head = tx.read(self.head)?;
        tx.write(node.field(0), head)?;
        tx.write(self.head, node.to_word())
    }

    /// Number of nodes currently parked (walks the list; quiescent only).
    pub fn parked(&self, stm: &Stm) -> usize {
        let mut n = 0;
        let mut cur = Handle::from_word(stm.peek(self.head));
        while !cur.is_null() {
            n += 1;
            cur = Handle::from_word(stm.peek(cur.field(0)));
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    #[test]
    fn take_fresh_then_recycle() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 3);
        let mut th = stm.register_thread();

        let a = th.run(|tx| fl.take(tx));
        assert!(!a.is_null());
        assert_eq!(fl.parked(&stm), 0);

        th.run(|tx| fl.put(tx, a));
        assert_eq!(fl.parked(&stm), 1);

        let b = th.run(|tx| fl.take(tx));
        assert_eq!(b, a, "recycled node must be reused");
        assert_eq!(fl.parked(&stm), 0);
    }

    #[test]
    fn lifo_order() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 2);
        let mut th = stm.register_thread();
        let (a, b) = th.run(|tx| Ok((fl.take(tx)?, fl.take(tx)?)));
        th.run(|tx| {
            fl.put(tx, a)?;
            fl.put(tx, b)
        });
        assert_eq!(fl.parked(&stm), 2);
        let first = th.run(|tx| fl.take(tx));
        assert_eq!(first, b);
        let second = th.run(|tx| fl.take(tx));
        assert_eq!(second, a);
    }

    #[test]
    fn aborted_take_does_not_leak_from_list() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 10).build();
        let fl = FreeList::new(&stm, 2);
        let mut th = stm.register_thread();
        let a = th.run(|tx| fl.take(tx));
        th.run(|tx| fl.put(tx, a));
        // A transaction that takes the node but aborts must leave it parked.
        let r: rinval::TxResult<()> = th.try_run(1, |tx| {
            let _ = fl.take(tx)?;
            tx.user_abort()
        });
        assert!(r.is_err());
        assert_eq!(fl.parked(&stm), 1);
    }

    #[test]
    fn concurrent_take_put_never_double_hands_out() {
        let stm = Stm::builder(AlgorithmKind::InvalStm).heap_words(1 << 14).build();
        let fl = FreeList::new(&stm, 2);
        let stm = &stm;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for i in 0..100u64 {
                        let n = th.run(|tx| {
                            let n = fl.take(tx)?;
                            tx.write(n.field(1), i)?;
                            Ok(n)
                        });
                        // If two threads ever held the same node, one's tag
                        // write would clobber the other's before it put it
                        // back — detectable because we hold it privately.
                        let seen = th.run(|tx| tx.read(n.field(1)));
                        assert_eq!(seen, i);
                        th.run(|tx| fl.put(tx, n));
                    }
                });
            }
        });
    }
}
