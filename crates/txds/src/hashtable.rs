//! Transactional chained hash map (`u64 → u64`) with a fixed bucket array.
//!
//! STAMP's `vacation`, `intruder` and `genome` keep their shared state in
//! hash tables; the fixed bucket count mirrors the C originals (which size
//! the table up front). Short chains keep read-sets small, so hash-table
//! transactions are the "cheap" end of the workload spectrum, in contrast
//! to [`crate::TSortedList`].

use crate::free_list::FreeList;
use rinval::{Handle, Stm, TxResult, Txn};

// Node layout: [key, val, next].
const KEY: u32 = 0;
const VAL: u32 = 1;
const NEXT: u32 = 2;

/// A shared transactional hash map.
#[derive(Clone, Copy, Debug)]
pub struct THashMap {
    /// First bucket cell; buckets are `nbuckets` consecutive words, each
    /// holding the head node handle of its chain.
    buckets: Handle,
    nbuckets: u32,
    /// Cell holding the element count.
    size: Handle,
    free: FreeList,
}

#[inline]
fn hash(key: u64) -> u64 {
    // SplitMix64 finalizer.
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl THashMap {
    /// Creates a map with `nbuckets` chains (rounded up to at least 1).
    pub fn new(stm: &Stm, nbuckets: u32) -> THashMap {
        let nbuckets = nbuckets.max(1);
        let buckets = stm.alloc(nbuckets as usize);
        THashMap {
            buckets,
            nbuckets,
            size: stm.alloc_init(&[0]),
            free: FreeList::new(stm, 3),
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> Handle {
        self.buckets.field((hash(key) % self.nbuckets as u64) as u32)
    }

    /// Number of entries.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        tx.read(self.size)
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Looks up `key`.
    pub fn get(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut cur = tx.read_handle(self.bucket(key))?;
        while !cur.is_null() {
            if tx.read(cur.field(KEY))? == key {
                return Ok(Some(tx.read(cur.field(VAL))?));
            }
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        Ok(None)
    }

    /// Membership test.
    pub fn contains(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Inserts `key → val`; returns `false` (after updating the value) if
    /// the key already existed.
    pub fn insert(&self, tx: &mut Txn<'_>, key: u64, val: u64) -> TxResult<bool> {
        let bucket = self.bucket(key);
        let head = tx.read_handle(bucket)?;
        let mut cur = head;
        while !cur.is_null() {
            if tx.read(cur.field(KEY))? == key {
                tx.write(cur.field(VAL), val)?;
                return Ok(false);
            }
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        let node = self.free.take(tx)?;
        tx.write(node.field(KEY), key)?;
        tx.write(node.field(VAL), val)?;
        tx.write(node.field(NEXT), head.to_word())?;
        tx.write(bucket, node.to_word())?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s + 1)?;
        Ok(true)
    }

    /// Atomically adds `delta` to the value at `key`, inserting
    /// `key → delta` if absent. Returns the new value. (The hot operation
    /// in kmeans-style accumulation.)
    pub fn add(&self, tx: &mut Txn<'_>, key: u64, delta: u64) -> TxResult<u64> {
        let bucket = self.bucket(key);
        let head = tx.read_handle(bucket)?;
        let mut cur = head;
        while !cur.is_null() {
            if tx.read(cur.field(KEY))? == key {
                let v = tx.read(cur.field(VAL))?.wrapping_add(delta);
                tx.write(cur.field(VAL), v)?;
                return Ok(v);
            }
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        let node = self.free.take(tx)?;
        tx.write(node.field(KEY), key)?;
        tx.write(node.field(VAL), delta)?;
        tx.write(node.field(NEXT), head.to_word())?;
        tx.write(bucket, node.to_word())?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s + 1)?;
        Ok(delta)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket(key);
        let mut prev: Option<Handle> = None;
        let mut cur = tx.read_handle(bucket)?;
        while !cur.is_null() {
            if tx.read(cur.field(KEY))? == key {
                let val = tx.read(cur.field(VAL))?;
                let next = tx.read(cur.field(NEXT))?;
                match prev {
                    None => tx.write(bucket, next)?,
                    Some(p) => tx.write(p.field(NEXT), next)?,
                }
                let s = tx.read(self.size)?;
                tx.write(self.size, s - 1)?;
                self.free.put(tx, cur)?;
                return Ok(Some(val));
            }
            prev = Some(cur);
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        Ok(None)
    }

    /// All `(key, value)` pairs in arbitrary order. Quiescent only.
    pub fn snapshot(&self, stm: &Stm) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur = Handle::from_word(stm.peek(self.buckets.field(b)));
            while !cur.is_null() {
                out.push((stm.peek(cur.field(KEY)), stm.peek(cur.field(VAL))));
                cur = Handle::from_word(stm.peek(cur.field(NEXT)));
            }
        }
        out
    }

    /// Checks key uniqueness and the size cell. Quiescent only.
    pub fn check_invariants(&self, stm: &Stm) -> Result<(), String> {
        let snap = self.snapshot(stm);
        let mut keys: Vec<u64> = snap.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        if keys.len() != before {
            return Err("duplicate key in hash map".into());
        }
        let recorded = stm.peek(self.size);
        if before as u64 != recorded {
            return Err(format!("size cell {recorded} != entry count {before}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    fn new_stm() -> Stm {
        Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 16).build()
    }

    #[test]
    fn insert_get_remove() {
        let stm = new_stm();
        let m = THashMap::new(&stm, 16);
        let mut th = stm.register_thread();
        assert!(th.run(|tx| m.insert(tx, 1, 10)));
        assert!(th.run(|tx| m.insert(tx, 17, 170))); // likely same bucket as 1
        assert!(!th.run(|tx| m.insert(tx, 1, 11)));
        assert_eq!(th.run(|tx| m.get(tx, 1)), Some(11));
        assert_eq!(th.run(|tx| m.get(tx, 17)), Some(170));
        assert_eq!(th.run(|tx| m.get(tx, 2)), None);
        assert_eq!(th.run(|tx| m.remove(tx, 1)), Some(11));
        assert_eq!(th.run(|tx| m.remove(tx, 1)), None);
        assert_eq!(th.run(|tx| m.len(tx)), 1);
        m.check_invariants(&stm).unwrap();
    }

    #[test]
    fn matches_btreemap_model() {
        let stm = new_stm();
        let m = THashMap::new(&stm, 8); // few buckets → long chains exercised
        let mut th = stm.register_thread();
        let mut model = std::collections::BTreeMap::new();
        let mut seed = 42u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (seed >> 33) % 40;
            match seed % 3 {
                0 => {
                    let fresh = th.run(|tx| m.insert(tx, k, seed));
                    assert_eq!(fresh, model.insert(k, seed).is_none());
                }
                1 => {
                    let got = th.run(|tx| m.remove(tx, k));
                    assert_eq!(got, model.remove(&k));
                }
                _ => {
                    let got = th.run(|tx| m.get(tx, k));
                    assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        let mut snap = m.snapshot(&stm);
        snap.sort_unstable();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(snap, want);
        m.check_invariants(&stm).unwrap();
    }

    #[test]
    fn add_accumulates_and_inserts() {
        let stm = new_stm();
        let m = THashMap::new(&stm, 4);
        let mut th = stm.register_thread();
        assert_eq!(th.run(|tx| m.add(tx, 9, 5)), 5);
        assert_eq!(th.run(|tx| m.add(tx, 9, 3)), 8);
        assert_eq!(th.run(|tx| m.get(tx, 9)), Some(8));
        assert_eq!(th.run(|tx| m.len(tx)), 1);
    }

    #[test]
    fn concurrent_adds_sum_correctly() {
        let stm = Stm::builder(AlgorithmKind::RInvalV1).heap_words(1 << 16).build();
        let m = THashMap::new(&stm, 4);
        let stm = &stm;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for k in 0..10u64 {
                        for _ in 0..20 {
                            th.run(|tx| m.add(tx, k, 1));
                        }
                    }
                });
            }
        });
        let snap = m.snapshot(stm);
        assert_eq!(snap.len(), 10);
        for (k, v) in snap {
            assert_eq!(v, 80, "key {k} lost updates");
        }
    }
}
