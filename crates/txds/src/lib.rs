//! # txds — transactional data structures on the `rinval` STM
//!
//! The paper evaluates its algorithms on a red-black-tree micro-benchmark
//! and on STAMP, whose applications are built from a small set of shared
//! structures (trees, lists, hash tables, queues, grids). This crate
//! provides those structures as *transactional* types: every operation
//! takes a [`rinval::Txn`] and performs all shared accesses through it, so
//! an operation (or several, composed) executes atomically under whichever
//! algorithm the [`rinval::Stm`] runs.
//!
//! All structures are handle-based and `Copy`: cloning a structure value
//! aliases the same shared object, like copying a pointer in the C
//! original. Memory comes from the STM's growable heap through its
//! transactional allocation lifecycle ([`rinval::Txn::alloc`] /
//! [`rinval::Txn::free`] via the [`free_list::FreeList`] facade): removed
//! nodes are freed in the removing transaction and recycled by the STM
//! once its reclamation horizon passes.
//!
//! ```
//! use rinval::{AlgorithmKind, Stm};
//! use txds::RbTree;
//!
//! let stm = Stm::new(AlgorithmKind::NOrec);
//! let tree = RbTree::new(&stm);
//! let mut th = stm.register_thread();
//! th.run(|tx| {
//!     tree.insert(tx, 5, 50)?;
//!     tree.insert(tx, 3, 30)
//! });
//! let v = th.run(|tx| tree.get(tx, 5));
//! assert_eq!(v, Some(50));
//! ```

#![warn(missing_docs)]

pub mod bitmap;
pub mod free_list;
pub mod hashtable;
pub mod list;
pub mod queue;
pub mod rbtree;
pub mod tarray;

pub use bitmap::TBitmap;
pub use hashtable::THashMap;
pub use list::TSortedList;
pub use queue::TQueue;
pub use rbtree::RbTree;
pub use tarray::TArray;
