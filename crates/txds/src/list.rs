//! Transactional sorted singly-linked list set.
//!
//! The paper's introduction uses linked-list traversal as the motivating
//! example of STM's monitoring overhead: unlike a hand-crafted lazy list,
//! an STM must log *every* traversed node, so the read-set grows linearly
//! with the traversal — the worst case for NOrec's quadratic incremental
//! validation and the best case for invalidation's O(1) per-read check.
//! This structure exists to reproduce exactly that behaviour.

use crate::free_list::FreeList;
use rinval::{Handle, Stm, TxResult, Txn};

// Node layout: [key, next].
const KEY: u32 = 0;
const NEXT: u32 = 1;

/// A shared transactional sorted list of unique `u64` keys.
#[derive(Clone, Copy, Debug)]
pub struct TSortedList {
    /// Sentinel head node (key unused); simplifies edge cases.
    head: Handle,
    /// Cell holding the element count.
    size: Handle,
    free: FreeList,
}

impl TSortedList {
    /// Creates an empty list.
    pub fn new(stm: &Stm) -> TSortedList {
        let head = stm.alloc_init(&[0, 0]);
        TSortedList {
            head,
            size: stm.alloc_init(&[0]),
            free: FreeList::new(stm, 2),
        }
    }

    /// Number of elements.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        tx.read(self.size)
    }

    /// True if no element is present.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Finds the last node with key < `key` (the insertion predecessor).
    fn find_prev(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Handle> {
        let mut prev = self.head;
        let mut cur = tx.read_handle(self.head.field(NEXT))?;
        while !cur.is_null() {
            let k = tx.read(cur.field(KEY))?;
            if k >= key {
                break;
            }
            prev = cur;
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        Ok(prev)
    }

    /// Membership test (reads the whole prefix — by design, see module doc).
    pub fn contains(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<bool> {
        let prev = self.find_prev(tx, key)?;
        let cur = tx.read_handle(prev.field(NEXT))?;
        if cur.is_null() {
            return Ok(false);
        }
        Ok(tx.read(cur.field(KEY))? == key)
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<bool> {
        let prev = self.find_prev(tx, key)?;
        let cur = tx.read_handle(prev.field(NEXT))?;
        if !cur.is_null() && tx.read(cur.field(KEY))? == key {
            return Ok(false);
        }
        let node = self.free.take(tx)?;
        tx.write(node.field(KEY), key)?;
        tx.write(node.field(NEXT), cur.to_word())?;
        tx.write(prev.field(NEXT), node.to_word())?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s + 1)?;
        Ok(true)
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<bool> {
        let prev = self.find_prev(tx, key)?;
        let cur = tx.read_handle(prev.field(NEXT))?;
        if cur.is_null() || tx.read(cur.field(KEY))? != key {
            return Ok(false);
        }
        let next = tx.read(cur.field(NEXT))?;
        tx.write(prev.field(NEXT), next)?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s - 1)?;
        self.free.put(tx, cur)?;
        Ok(true)
    }

    /// Sums all keys (a long read-only transaction; used as a scan
    /// workload and for verification).
    pub fn sum(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        let mut cur = tx.read_handle(self.head.field(NEXT))?;
        let mut acc = 0u64;
        while !cur.is_null() {
            acc = acc.wrapping_add(tx.read(cur.field(KEY))?);
            cur = tx.read_handle(cur.field(NEXT))?;
        }
        Ok(acc)
    }

    /// All keys in order. Quiescent only.
    pub fn snapshot_keys(&self, stm: &Stm) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = Handle::from_word(stm.peek(self.head.field(NEXT)));
        while !cur.is_null() {
            out.push(stm.peek(cur.field(KEY)));
            cur = Handle::from_word(stm.peek(cur.field(NEXT)));
        }
        out
    }

    /// Checks sortedness, uniqueness and the size cell. Quiescent only.
    pub fn check_invariants(&self, stm: &Stm) -> Result<(), String> {
        let keys = self.snapshot_keys(stm);
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("list not strictly sorted: {} !< {}", w[0], w[1]));
            }
        }
        let recorded = stm.peek(self.size);
        if keys.len() as u64 != recorded {
            return Err(format!("size cell {recorded} != node count {}", keys.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    fn new_stm() -> Stm {
        Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 14).build()
    }

    #[test]
    fn insert_contains_remove() {
        let stm = new_stm();
        let l = TSortedList::new(&stm);
        let mut th = stm.register_thread();
        assert!(th.run(|tx| l.insert(tx, 5)));
        assert!(th.run(|tx| l.insert(tx, 1)));
        assert!(th.run(|tx| l.insert(tx, 9)));
        assert!(!th.run(|tx| l.insert(tx, 5)), "duplicate must be rejected");
        assert!(th.run(|tx| l.contains(tx, 1)));
        assert!(!th.run(|tx| l.contains(tx, 4)));
        assert!(th.run(|tx| l.remove(tx, 5)));
        assert!(!th.run(|tx| l.remove(tx, 5)));
        assert_eq!(l.snapshot_keys(&stm), vec![1, 9]);
        l.check_invariants(&stm).unwrap();
    }

    #[test]
    fn stays_sorted_under_random_ops() {
        let stm = new_stm();
        let l = TSortedList::new(&stm);
        let mut th = stm.register_thread();
        let mut seed = 7u64;
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..400 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (seed >> 33) % 64;
            if seed.is_multiple_of(2) {
                assert_eq!(th.run(|tx| l.insert(tx, k)), model.insert(k));
            } else {
                assert_eq!(th.run(|tx| l.remove(tx, k)), model.remove(&k));
            }
        }
        assert_eq!(l.snapshot_keys(&stm), model.iter().copied().collect::<Vec<_>>());
        l.check_invariants(&stm).unwrap();
    }

    #[test]
    fn sum_matches_snapshot() {
        let stm = new_stm();
        let l = TSortedList::new(&stm);
        let mut th = stm.register_thread();
        for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            th.run(|tx| l.insert(tx, k));
        }
        let s = th.run(|tx| l.sum(tx));
        assert_eq!(s, l.snapshot_keys(&stm).iter().sum::<u64>());
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let stm = Stm::builder(AlgorithmKind::InvalStm).heap_words(1 << 16).build();
        let l = TSortedList::new(&stm);
        let stm = &stm;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for i in 0..50u64 {
                        th.run(|tx| l.insert(tx, t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(l.snapshot_keys(stm).len(), 200);
        l.check_invariants(stm).unwrap();
    }
}
