//! Transactional FIFO queue.
//!
//! STAMP's `intruder` threads pull packets from a shared work queue and
//! push reassembled flows onto another — the queue is the contention
//! hot-spot of that benchmark, which is why it lives here rather than in
//! application code.

use crate::free_list::FreeList;
use rinval::{Handle, Stm, TxResult, Txn};

// Node layout: [val, next].
const VAL: u32 = 0;
const NEXT: u32 = 1;

/// A shared transactional FIFO queue of `u64` values.
#[derive(Clone, Copy, Debug)]
pub struct TQueue {
    /// Cell holding the head node handle (dequeue end).
    head: Handle,
    /// Cell holding the tail node handle (enqueue end).
    tail: Handle,
    /// Cell holding the element count.
    size: Handle,
    free: FreeList,
}

impl TQueue {
    /// Creates an empty queue.
    pub fn new(stm: &Stm) -> TQueue {
        TQueue {
            head: stm.alloc_init(&[0]),
            tail: stm.alloc_init(&[0]),
            size: stm.alloc_init(&[0]),
            free: FreeList::new(stm, 2),
        }
    }

    /// Number of queued values.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        tx.read(self.size)
    }

    /// True if nothing is queued.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Appends `val` at the tail.
    pub fn enqueue(&self, tx: &mut Txn<'_>, val: u64) -> TxResult<()> {
        let node = self.free.take(tx)?;
        tx.write(node.field(VAL), val)?;
        tx.write(node.field(NEXT), 0)?;
        let tail = tx.read_handle(self.tail)?;
        if tail.is_null() {
            tx.write(self.head, node.to_word())?;
        } else {
            tx.write(tail.field(NEXT), node.to_word())?;
        }
        tx.write(self.tail, node.to_word())?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s + 1)
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn dequeue(&self, tx: &mut Txn<'_>) -> TxResult<Option<u64>> {
        let head = tx.read_handle(self.head)?;
        if head.is_null() {
            return Ok(None);
        }
        let val = tx.read(head.field(VAL))?;
        let next = tx.read(head.field(NEXT))?;
        tx.write(self.head, next)?;
        if next == 0 {
            tx.write(self.tail, 0)?;
        }
        let s = tx.read(self.size)?;
        tx.write(self.size, s - 1)?;
        self.free.put(tx, head)?;
        Ok(Some(val))
    }

    /// All queued values, head first. Quiescent only.
    pub fn snapshot(&self, stm: &Stm) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = Handle::from_word(stm.peek(self.head));
        while !cur.is_null() {
            out.push(stm.peek(cur.field(VAL)));
            cur = Handle::from_word(stm.peek(cur.field(NEXT)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    fn new_stm() -> Stm {
        Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 14).build()
    }

    #[test]
    fn fifo_order() {
        let stm = new_stm();
        let q = TQueue::new(&stm);
        let mut th = stm.register_thread();
        for v in 1..=5u64 {
            th.run(|tx| q.enqueue(tx, v));
        }
        assert_eq!(q.snapshot(&stm), vec![1, 2, 3, 4, 5]);
        for v in 1..=5u64 {
            assert_eq!(th.run(|tx| q.dequeue(tx)), Some(v));
        }
        assert_eq!(th.run(|tx| q.dequeue(tx)), None);
        assert_eq!(th.run(|tx| q.len(tx)), 0);
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let stm = new_stm();
        let q = TQueue::new(&stm);
        let mut th = stm.register_thread();
        th.run(|tx| q.enqueue(tx, 1));
        th.run(|tx| q.enqueue(tx, 2));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(1));
        th.run(|tx| q.enqueue(tx, 3));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(2));
        assert_eq!(th.run(|tx| q.dequeue(tx)), Some(3));
        assert_eq!(th.run(|tx| q.dequeue(tx)), None);
        // Emptying must reset tail so the next enqueue works.
        th.run(|tx| q.enqueue(tx, 9));
        assert_eq!(q.snapshot(&stm), vec![9]);
    }

    #[test]
    fn enqueue_dequeue_in_one_transaction() {
        let stm = new_stm();
        let q = TQueue::new(&stm);
        let mut th = stm.register_thread();
        let v = th.run(|tx| {
            q.enqueue(tx, 42)?;
            q.dequeue(tx)
        });
        assert_eq!(v, Some(42));
        assert_eq!(q.snapshot(&stm), Vec::<u64>::new());
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
            .heap_words(1 << 16)
            .build();
        let q = TQueue::new(&stm);
        let stm = &stm;
        const PER_PRODUCER: u64 = 100;
        let consumed: Vec<u64> = std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for i in 0..PER_PRODUCER {
                        th.run(|tx| q.enqueue(tx, t * 1000 + i));
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(move || {
                        let mut th = stm.register_thread();
                        let mut got = Vec::new();
                        let mut misses = 0;
                        while misses < 200 {
                            match th.run(|tx| q.dequeue(tx)) {
                                Some(v) => {
                                    got.push(v);
                                    misses = 0;
                                }
                                None => {
                                    misses += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect()
        });
        let leftover = q.snapshot(stm);
        let mut all: Vec<u64> = consumed.into_iter().chain(leftover).collect();
        all.sort_unstable();
        let mut want: Vec<u64> = (0..PER_PRODUCER)
            .flat_map(|i| [i, 1000 + i])
            .collect();
        want.sort_unstable();
        assert_eq!(all, want, "items lost or duplicated");
    }
}
