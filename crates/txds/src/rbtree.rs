//! Transactional red-black tree map (`u64 → u64`).
//!
//! The structure behind the paper's micro-benchmark (Figs. 2 and 7: a
//! 64K-element red-black tree). The implementation follows CLRS with
//! parent pointers and a shared `nil` sentinel, like the RSTM/STAMP C
//! version; every node access goes through the transaction, so a single
//! `insert`/`remove`/`get` is one atomic operation and its read-set is the
//! root-to-leaf path (≈ 2·log₂ n words) — the workload shape the paper's
//! validation-cost analysis assumes.

use crate::free_list::FreeList;
use rinval::{Handle, Stm, TxResult, Txn};

// Node layout (6 words).
const KEY: u32 = 0;
const VAL: u32 = 1;
const LEFT: u32 = 2;
const RIGHT: u32 = 3;
const PARENT: u32 = 4;
const COLOR: u32 = 5;

const RED: u64 = 0;
const BLACK: u64 = 1;

/// A shared transactional red-black tree. `Copy`: copies alias the tree.
#[derive(Clone, Copy, Debug)]
pub struct RbTree {
    /// Cell holding the root node handle.
    root: Handle,
    /// The nil sentinel (black). Its child/parent fields are scratch space,
    /// exactly as in CLRS.
    nil: Handle,
    /// Cell holding the element count.
    size: Handle,
    free: FreeList,
}

impl RbTree {
    /// Creates an empty tree.
    pub fn new(stm: &Stm) -> RbTree {
        let nil = stm.alloc(6);
        stm.poke(nil.field(COLOR), BLACK);
        let root = stm.alloc_init(&[nil.to_word()]);
        let size = stm.alloc_init(&[0]);
        RbTree {
            root,
            nil,
            size,
            free: FreeList::new(stm, 6),
        }
    }

    #[inline]
    fn is_nil(&self, n: Handle) -> bool {
        n == self.nil
    }

    #[inline]
    fn ptr(&self, tx: &mut Txn<'_>, n: Handle, f: u32) -> TxResult<Handle> {
        Ok(Handle::from_word(tx.read(n.field(f))?))
    }

    #[inline]
    fn set_ptr(&self, tx: &mut Txn<'_>, n: Handle, f: u32, v: Handle) -> TxResult<()> {
        tx.write(n.field(f), v.to_word())
    }

    fn root(&self, tx: &mut Txn<'_>) -> TxResult<Handle> {
        Ok(Handle::from_word(tx.read(self.root)?))
    }

    /// Number of elements.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<u64> {
        tx.read(self.size)
    }

    /// True if the tree has no elements.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    fn find(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Handle> {
        let mut x = self.root(tx)?;
        while !self.is_nil(x) {
            let k = tx.read(x.field(KEY))?;
            if key == k {
                return Ok(x);
            }
            x = self.ptr(tx, x, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(self.nil)
    }

    /// Looks up `key`.
    pub fn get(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Option<u64>> {
        let n = self.find(tx, key)?;
        if self.is_nil(n) {
            Ok(None)
        } else {
            Ok(Some(tx.read(n.field(VAL))?))
        }
    }

    /// Membership test.
    pub fn contains(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<bool> {
        Ok(!self.is_nil(self.find(tx, key)?))
    }

    fn rotate_left(&self, tx: &mut Txn<'_>, x: Handle) -> TxResult<()> {
        let y = self.ptr(tx, x, RIGHT)?;
        let yl = self.ptr(tx, y, LEFT)?;
        self.set_ptr(tx, x, RIGHT, yl)?;
        if !self.is_nil(yl) {
            self.set_ptr(tx, yl, PARENT, x)?;
        }
        let xp = self.ptr(tx, x, PARENT)?;
        self.set_ptr(tx, y, PARENT, xp)?;
        if self.is_nil(xp) {
            tx.write(self.root, y.to_word())?;
        } else if self.ptr(tx, xp, LEFT)? == x {
            self.set_ptr(tx, xp, LEFT, y)?;
        } else {
            self.set_ptr(tx, xp, RIGHT, y)?;
        }
        self.set_ptr(tx, y, LEFT, x)?;
        self.set_ptr(tx, x, PARENT, y)
    }

    fn rotate_right(&self, tx: &mut Txn<'_>, x: Handle) -> TxResult<()> {
        let y = self.ptr(tx, x, LEFT)?;
        let yr = self.ptr(tx, y, RIGHT)?;
        self.set_ptr(tx, x, LEFT, yr)?;
        if !self.is_nil(yr) {
            self.set_ptr(tx, yr, PARENT, x)?;
        }
        let xp = self.ptr(tx, x, PARENT)?;
        self.set_ptr(tx, y, PARENT, xp)?;
        if self.is_nil(xp) {
            tx.write(self.root, y.to_word())?;
        } else if self.ptr(tx, xp, RIGHT)? == x {
            self.set_ptr(tx, xp, RIGHT, y)?;
        } else {
            self.set_ptr(tx, xp, LEFT, y)?;
        }
        self.set_ptr(tx, y, RIGHT, x)?;
        self.set_ptr(tx, x, PARENT, y)
    }

    /// Inserts `key → val`. Returns `true` if the key was new; if it
    /// already existed, the value is updated and `false` is returned.
    pub fn insert(&self, tx: &mut Txn<'_>, key: u64, val: u64) -> TxResult<bool> {
        let mut y = self.nil;
        let mut x = self.root(tx)?;
        while !self.is_nil(x) {
            y = x;
            let k = tx.read(x.field(KEY))?;
            if key == k {
                tx.write(x.field(VAL), val)?;
                return Ok(false);
            }
            x = self.ptr(tx, x, if key < k { LEFT } else { RIGHT })?;
        }
        let z = self.free.take(tx)?;
        // Fresh or recycled either way: set every field. A recycled node is
        // unreachable, so plain transactional writes suffice.
        tx.write(z.field(KEY), key)?;
        tx.write(z.field(VAL), val)?;
        self.set_ptr(tx, z, LEFT, self.nil)?;
        self.set_ptr(tx, z, RIGHT, self.nil)?;
        self.set_ptr(tx, z, PARENT, y)?;
        tx.write(z.field(COLOR), RED)?;
        if self.is_nil(y) {
            tx.write(self.root, z.to_word())?;
        } else if key < tx.read(y.field(KEY))? {
            self.set_ptr(tx, y, LEFT, z)?;
        } else {
            self.set_ptr(tx, y, RIGHT, z)?;
        }
        self.insert_fixup(tx, z)?;
        let s = tx.read(self.size)?;
        tx.write(self.size, s + 1)?;
        Ok(true)
    }

    fn insert_fixup(&self, tx: &mut Txn<'_>, mut z: Handle) -> TxResult<()> {
        loop {
            let p = self.ptr(tx, z, PARENT)?;
            if self.is_nil(p) || tx.read(p.field(COLOR))? == BLACK {
                break;
            }
            let g = self.ptr(tx, p, PARENT)?;
            if p == self.ptr(tx, g, LEFT)? {
                let u = self.ptr(tx, g, RIGHT)?;
                if !self.is_nil(u) && tx.read(u.field(COLOR))? == RED {
                    tx.write(p.field(COLOR), BLACK)?;
                    tx.write(u.field(COLOR), BLACK)?;
                    tx.write(g.field(COLOR), RED)?;
                    z = g;
                } else {
                    if z == self.ptr(tx, p, RIGHT)? {
                        z = p;
                        self.rotate_left(tx, z)?;
                    }
                    let p2 = self.ptr(tx, z, PARENT)?;
                    let g2 = self.ptr(tx, p2, PARENT)?;
                    tx.write(p2.field(COLOR), BLACK)?;
                    tx.write(g2.field(COLOR), RED)?;
                    self.rotate_right(tx, g2)?;
                }
            } else {
                let u = self.ptr(tx, g, LEFT)?;
                if !self.is_nil(u) && tx.read(u.field(COLOR))? == RED {
                    tx.write(p.field(COLOR), BLACK)?;
                    tx.write(u.field(COLOR), BLACK)?;
                    tx.write(g.field(COLOR), RED)?;
                    z = g;
                } else {
                    if z == self.ptr(tx, p, LEFT)? {
                        z = p;
                        self.rotate_right(tx, z)?;
                    }
                    let p2 = self.ptr(tx, z, PARENT)?;
                    let g2 = self.ptr(tx, p2, PARENT)?;
                    tx.write(p2.field(COLOR), BLACK)?;
                    tx.write(g2.field(COLOR), RED)?;
                    self.rotate_left(tx, g2)?;
                }
            }
        }
        let r = self.root(tx)?;
        tx.write(r.field(COLOR), BLACK)
    }

    /// `v` takes `u`'s place under `u`'s parent (CLRS RB-TRANSPLANT).
    fn transplant(&self, tx: &mut Txn<'_>, u: Handle, v: Handle) -> TxResult<()> {
        let up = self.ptr(tx, u, PARENT)?;
        if self.is_nil(up) {
            tx.write(self.root, v.to_word())?;
        } else if u == self.ptr(tx, up, LEFT)? {
            self.set_ptr(tx, up, LEFT, v)?;
        } else {
            self.set_ptr(tx, up, RIGHT, v)?;
        }
        // Writing nil's parent is deliberate (CLRS): delete_fixup reads it.
        self.set_ptr(tx, v, PARENT, up)
    }

    fn minimum(&self, tx: &mut Txn<'_>, mut x: Handle) -> TxResult<Handle> {
        loop {
            let l = self.ptr(tx, x, LEFT)?;
            if self.is_nil(l) {
                return Ok(x);
            }
            x = l;
        }
    }

    /// Removes `key`, returning its value if present. The node is recycled
    /// via the free-list.
    pub fn remove(&self, tx: &mut Txn<'_>, key: u64) -> TxResult<Option<u64>> {
        let z = self.find(tx, key)?;
        if self.is_nil(z) {
            return Ok(None);
        }
        let val = tx.read(z.field(VAL))?;
        let mut y = z;
        let mut y_color = tx.read(y.field(COLOR))?;
        let x;
        let zl = self.ptr(tx, z, LEFT)?;
        let zr = self.ptr(tx, z, RIGHT)?;
        if self.is_nil(zl) {
            x = zr;
            self.transplant(tx, z, zr)?;
        } else if self.is_nil(zr) {
            x = zl;
            self.transplant(tx, z, zl)?;
        } else {
            y = self.minimum(tx, zr)?;
            y_color = tx.read(y.field(COLOR))?;
            x = self.ptr(tx, y, RIGHT)?;
            if self.ptr(tx, y, PARENT)? == z {
                self.set_ptr(tx, x, PARENT, y)?;
            } else {
                self.transplant(tx, y, x)?;
                let zr2 = self.ptr(tx, z, RIGHT)?;
                self.set_ptr(tx, y, RIGHT, zr2)?;
                self.set_ptr(tx, zr2, PARENT, y)?;
            }
            self.transplant(tx, z, y)?;
            let zl2 = self.ptr(tx, z, LEFT)?;
            self.set_ptr(tx, y, LEFT, zl2)?;
            self.set_ptr(tx, zl2, PARENT, y)?;
            let zc = tx.read(z.field(COLOR))?;
            tx.write(y.field(COLOR), zc)?;
        }
        if y_color == BLACK {
            self.delete_fixup(tx, x)?;
        }
        let s = tx.read(self.size)?;
        tx.write(self.size, s - 1)?;
        self.free.put(tx, z)?;
        Ok(Some(val))
    }

    fn delete_fixup(&self, tx: &mut Txn<'_>, mut x: Handle) -> TxResult<()> {
        loop {
            let r = self.root(tx)?;
            if x == r || tx.read(x.field(COLOR))? == RED {
                break;
            }
            let p = self.ptr(tx, x, PARENT)?;
            if x == self.ptr(tx, p, LEFT)? {
                let mut w = self.ptr(tx, p, RIGHT)?;
                if tx.read(w.field(COLOR))? == RED {
                    tx.write(w.field(COLOR), BLACK)?;
                    tx.write(p.field(COLOR), RED)?;
                    self.rotate_left(tx, p)?;
                    w = self.ptr(tx, p, RIGHT)?;
                }
                let wl = self.ptr(tx, w, LEFT)?;
                let wr = self.ptr(tx, w, RIGHT)?;
                let wl_black = self.is_nil(wl) || tx.read(wl.field(COLOR))? == BLACK;
                let wr_black = self.is_nil(wr) || tx.read(wr.field(COLOR))? == BLACK;
                if wl_black && wr_black {
                    tx.write(w.field(COLOR), RED)?;
                    x = p;
                } else {
                    if wr_black {
                        tx.write(wl.field(COLOR), BLACK)?;
                        tx.write(w.field(COLOR), RED)?;
                        self.rotate_right(tx, w)?;
                        w = self.ptr(tx, p, RIGHT)?;
                    }
                    let pc = tx.read(p.field(COLOR))?;
                    tx.write(w.field(COLOR), pc)?;
                    tx.write(p.field(COLOR), BLACK)?;
                    let wr2 = self.ptr(tx, w, RIGHT)?;
                    tx.write(wr2.field(COLOR), BLACK)?;
                    self.rotate_left(tx, p)?;
                    x = self.root(tx)?;
                }
            } else {
                let mut w = self.ptr(tx, p, LEFT)?;
                if tx.read(w.field(COLOR))? == RED {
                    tx.write(w.field(COLOR), BLACK)?;
                    tx.write(p.field(COLOR), RED)?;
                    self.rotate_right(tx, p)?;
                    w = self.ptr(tx, p, LEFT)?;
                }
                let wl = self.ptr(tx, w, LEFT)?;
                let wr = self.ptr(tx, w, RIGHT)?;
                let wl_black = self.is_nil(wl) || tx.read(wl.field(COLOR))? == BLACK;
                let wr_black = self.is_nil(wr) || tx.read(wr.field(COLOR))? == BLACK;
                if wl_black && wr_black {
                    tx.write(w.field(COLOR), RED)?;
                    x = p;
                } else {
                    if wl_black {
                        tx.write(wr.field(COLOR), BLACK)?;
                        tx.write(w.field(COLOR), RED)?;
                        self.rotate_left(tx, w)?;
                        w = self.ptr(tx, p, LEFT)?;
                    }
                    let pc = tx.read(p.field(COLOR))?;
                    tx.write(w.field(COLOR), pc)?;
                    tx.write(p.field(COLOR), BLACK)?;
                    let wl2 = self.ptr(tx, w, LEFT)?;
                    tx.write(wl2.field(COLOR), BLACK)?;
                    self.rotate_right(tx, p)?;
                    x = self.root(tx)?;
                }
            }
        }
        tx.write(x.field(COLOR), BLACK)
    }

    // ----- quiescent (non-transactional) helpers for tests/verification -----

    fn peek_ptr(&self, stm: &Stm, n: Handle, f: u32) -> Handle {
        Handle::from_word(stm.peek(n.field(f)))
    }

    /// In-order key list. Quiescent only (no transactions running).
    pub fn snapshot_keys(&self, stm: &Stm) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = Handle::from_word(stm.peek(self.root));
        while !self.is_nil(cur) || !stack.is_empty() {
            while !self.is_nil(cur) {
                stack.push(cur);
                cur = self.peek_ptr(stm, cur, LEFT);
            }
            let n = stack.pop().unwrap();
            out.push(stm.peek(n.field(KEY)));
            cur = self.peek_ptr(stm, n, RIGHT);
        }
        out
    }

    /// Verifies every red-black invariant (BST order, root black, no red
    /// node with a red child, equal black heights). Quiescent only.
    pub fn check_invariants(&self, stm: &Stm) -> Result<(), String> {
        let root = Handle::from_word(stm.peek(self.root));
        if self.is_nil(root) {
            return Ok(());
        }
        if stm.peek(root.field(COLOR)) != BLACK {
            return Err("root is not black".into());
        }
        self.check_node(stm, root, None, None).map(|_| ())?;
        let n = self.snapshot_keys(stm).len() as u64;
        let recorded = stm.peek(self.size);
        if n != recorded {
            return Err(format!("size cell says {recorded}, tree has {n} nodes"));
        }
        Ok(())
    }

    /// Returns the black-height of the subtree, validating along the way.
    fn check_node(
        &self,
        stm: &Stm,
        n: Handle,
        lo: Option<u64>,
        hi: Option<u64>,
    ) -> Result<u32, String> {
        if self.is_nil(n) {
            return Ok(1);
        }
        let k = stm.peek(n.field(KEY));
        if let Some(lo) = lo {
            if k <= lo {
                return Err(format!("BST order violated at key {k} (lo {lo})"));
            }
        }
        if let Some(hi) = hi {
            if k >= hi {
                return Err(format!("BST order violated at key {k} (hi {hi})"));
            }
        }
        let color = stm.peek(n.field(COLOR));
        let l = self.peek_ptr(stm, n, LEFT);
        let r = self.peek_ptr(stm, n, RIGHT);
        if color == RED {
            for c in [l, r] {
                if !self.is_nil(c) && stm.peek(c.field(COLOR)) == RED {
                    return Err(format!("red node {k} has a red child"));
                }
            }
        }
        for c in [l, r] {
            if !self.is_nil(c) {
                let cp = self.peek_ptr(stm, c, PARENT);
                if cp != n {
                    return Err(format!("broken parent pointer under key {k}"));
                }
            }
        }
        let hl = self.check_node(stm, l, lo, Some(k))?;
        let hr = self.check_node(stm, r, Some(k), hi)?;
        if hl != hr {
            return Err(format!("black height mismatch at key {k}: {hl} vs {hr}"));
        }
        Ok(hl + if color == BLACK { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    fn new_stm() -> Stm {
        Stm::builder(AlgorithmKind::NOrec).heap_words(1 << 16).build()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let stm = new_stm();
        let t = RbTree::new(&stm);
        let mut th = stm.register_thread();
        assert!(th.run(|tx| t.insert(tx, 10, 100)));
        assert!(th.run(|tx| t.insert(tx, 5, 50)));
        assert!(th.run(|tx| t.insert(tx, 15, 150)));
        assert_eq!(th.run(|tx| t.get(tx, 5)), Some(50));
        assert_eq!(th.run(|tx| t.get(tx, 10)), Some(100));
        assert_eq!(th.run(|tx| t.get(tx, 15)), Some(150));
        assert_eq!(th.run(|tx| t.get(tx, 7)), None);
        assert_eq!(th.run(|tx| t.remove(tx, 10)), Some(100));
        assert_eq!(th.run(|tx| t.get(tx, 10)), None);
        assert_eq!(th.run(|tx| t.len(tx)), 2);
        t.check_invariants(&stm).unwrap();
    }

    #[test]
    fn duplicate_insert_updates_value() {
        let stm = new_stm();
        let t = RbTree::new(&stm);
        let mut th = stm.register_thread();
        assert!(th.run(|tx| t.insert(tx, 1, 10)));
        assert!(!th.run(|tx| t.insert(tx, 1, 20)));
        assert_eq!(th.run(|tx| t.get(tx, 1)), Some(20));
        assert_eq!(th.run(|tx| t.len(tx)), 1);
    }

    #[test]
    fn remove_absent_is_none() {
        let stm = new_stm();
        let t = RbTree::new(&stm);
        let mut th = stm.register_thread();
        assert_eq!(th.run(|tx| t.remove(tx, 42)), None);
        th.run(|tx| t.insert(tx, 1, 1));
        assert_eq!(th.run(|tx| t.remove(tx, 42)), None);
        assert_eq!(th.run(|tx| t.len(tx)), 1);
    }

    #[test]
    fn ascending_descending_and_mixed_insertions_stay_balanced() {
        for order in 0..3 {
            let stm = new_stm();
            let t = RbTree::new(&stm);
            let mut th = stm.register_thread();
            let keys: Vec<u64> = match order {
                0 => (0..200).collect(),
                1 => (0..200).rev().collect(),
                _ => (0..200).map(|i| (i * 73) % 200).collect(),
            };
            for &k in &keys {
                th.run(|tx| t.insert(tx, k, k * 2));
                t.check_invariants(&stm).unwrap();
            }
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(t.snapshot_keys(&stm), sorted);
        }
    }

    #[test]
    fn removals_preserve_invariants() {
        let stm = new_stm();
        let t = RbTree::new(&stm);
        let mut th = stm.register_thread();
        for k in 0..100u64 {
            th.run(|tx| t.insert(tx, (k * 37) % 100, k));
        }
        for k in 0..100u64 {
            let key = (k * 61) % 100;
            th.run(|tx| t.remove(tx, key));
            t.check_invariants(&stm)
                .unwrap_or_else(|e| panic!("after removing {key}: {e}"));
        }
        assert_eq!(th.run(|tx| t.len(tx)), 0);
        assert!(t.snapshot_keys(&stm).is_empty());
    }

    #[test]
    fn nodes_are_recycled() {
        let stm = new_stm();
        let t = RbTree::new(&stm);
        let mut th = stm.register_thread();
        th.run(|tx| t.insert(tx, 1, 1));
        let before = stm.heap_allocated();
        for _ in 0..10 {
            th.run(|tx| t.remove(tx, 1));
            th.run(|tx| t.insert(tx, 1, 1));
        }
        // One node parked at most; no growth proportional to churn.
        assert!(stm.heap_allocated() <= before + 6);
    }

    #[test]
    fn concurrent_ops_keep_tree_valid() {
        let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
            .heap_words(1 << 18)
            .build();
        let t = RbTree::new(&stm);
        {
            let mut th = stm.register_thread();
            for k in 0..256u64 {
                th.run(|tx| t.insert(tx, k * 2, k));
            }
        }
        let stm_ref = &stm;
        std::thread::scope(|s| {
            for id in 0..4u64 {
                s.spawn(move || {
                    let mut th = stm_ref.register_thread();
                    let mut seed = id + 99;
                    for _ in 0..200 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (seed >> 20) % 512;
                        match seed % 3 {
                            0 => {
                                th.run(|tx| t.insert(tx, k, seed));
                            }
                            1 => {
                                th.run(|tx| t.remove(tx, k));
                            }
                            _ => {
                                th.run(|tx| t.contains(tx, k));
                            }
                        }
                    }
                });
            }
        });
        t.check_invariants(&stm).unwrap();
        let keys = t.snapshot_keys(&stm);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "in-order traversal must be sorted");
    }
}
