//! Transactional fixed-size array of words.
//!
//! `kmeans` keeps its cluster centroids (and membership counts) in flat
//! arrays updated transactionally; `ssca2` keeps degree counters. This is
//! the thin typed wrapper those applications use.

use rinval::{Handle, Stm, TxResult, Txn, Word};
use std::marker::PhantomData;

/// A shared transactional array of `len` elements of `T: Word`.
#[derive(Debug)]
pub struct TArray<T: Word> {
    base: Handle,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Word> Clone for TArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Word> Copy for TArray<T> {}

impl<T: Word> TArray<T> {
    /// Allocates a zero-initialized array (`T::from_word(0)` per element).
    pub fn new(stm: &Stm, len: usize) -> TArray<T> {
        TArray {
            base: stm.alloc(len.max(1)),
            len,
            _marker: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn cell(&self, i: usize) -> Handle {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.base.field(i as u32)
    }

    /// Transactional read of element `i`.
    pub fn get(&self, tx: &mut Txn<'_>, i: usize) -> TxResult<T> {
        Ok(T::from_word(tx.read(self.cell(i))?))
    }

    /// Transactional write of element `i`.
    pub fn set(&self, tx: &mut Txn<'_>, i: usize, v: T) -> TxResult<()> {
        tx.write(self.cell(i), v.to_word())
    }

    /// Transactional read-modify-write of element `i`.
    pub fn update(&self, tx: &mut Txn<'_>, i: usize, f: impl FnOnce(T) -> T) -> TxResult<T> {
        let v = f(self.get(tx, i)?);
        self.set(tx, i, v)?;
        Ok(v)
    }

    /// Non-transactional read for setup/verification.
    pub fn peek(&self, stm: &Stm, i: usize) -> T {
        T::from_word(stm.peek(self.cell(i)))
    }

    /// Non-transactional write for setup.
    pub fn poke(&self, stm: &Stm, i: usize, v: T) {
        stm.poke(self.cell(i), v.to_word());
    }

    /// Non-transactional full snapshot.
    pub fn snapshot(&self, stm: &Stm) -> Vec<T> {
        (0..self.len).map(|i| self.peek(stm, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rinval::AlgorithmKind;

    #[test]
    fn get_set_update() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(256).build();
        let a: TArray<i64> = TArray::new(&stm, 4);
        let mut th = stm.register_thread();
        assert_eq!(th.run(|tx| a.get(tx, 0)), 0);
        th.run(|tx| a.set(tx, 0, -5));
        assert_eq!(th.run(|tx| a.get(tx, 0)), -5);
        let v = th.run(|tx| a.update(tx, 0, |x| x * 2));
        assert_eq!(v, -10);
        assert_eq!(a.peek(&stm, 0), -10);
    }

    #[test]
    fn float_elements_roundtrip() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(256).build();
        let a: TArray<f64> = TArray::new(&stm, 2);
        let mut th = stm.register_thread();
        th.run(|tx| a.set(tx, 1, 2.5));
        assert_eq!(th.run(|tx| a.get(tx, 1)), 2.5);
        assert_eq!(a.snapshot(&stm), vec![0.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        let stm = Stm::builder(AlgorithmKind::NOrec).heap_words(256).build();
        let a: TArray<u64> = TArray::new(&stm, 2);
        a.peek(&stm, 2);
    }

    #[test]
    fn concurrent_updates_to_disjoint_cells() {
        let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
            .heap_words(1 << 10)
            .build();
        let a: TArray<u64> = TArray::new(&stm, 4);
        let stm = &stm;
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for _ in 0..100 {
                        th.run(|tx| a.update(tx, t, |v| v + 1).map(|_| ()));
                    }
                });
            }
        });
        for i in 0..4 {
            assert_eq!(a.peek(stm, i), 100);
        }
    }
}
