//! A concurrent bank: transfer transactions race with full-ledger audits.
//!
//! The audit transaction sums every account *inside one transaction*, so
//! under an opaque STM it must always observe the conserved total — run
//! with any algorithm and watch zero violations. This is the classic
//! snapshot-consistency demo the paper's opacity guarantee (§IV-E)
//! enables.
//!
//! ```sh
//! cargo run --example bank [algorithm] [threads]
//! # e.g.
//! cargo run --example bank rinval-v2 4
//! ```

use rinval_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const ACCOUNTS: usize = 64;
const INITIAL: u64 = 1_000;

fn parse_algorithm(name: &str) -> AlgorithmKind {
    match name {
        "coarse-lock" => AlgorithmKind::CoarseLock,
        "tml" => AlgorithmKind::Tml,
        "norec" => AlgorithmKind::NOrec,
        "tl2" => AlgorithmKind::Tl2,
        "invalstm" => AlgorithmKind::InvalStm,
        "rinval-v1" => AlgorithmKind::RInvalV1,
        "rinval-v2" => AlgorithmKind::RInvalV2 { invalidators: 2 },
        "rinval-v3" => AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 4,
        },
        other => {
            eprintln!("unknown algorithm '{other}', using rinval-v2");
            AlgorithmKind::RInvalV2 { invalidators: 2 }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algo = parse_algorithm(args.get(1).map(String::as_str).unwrap_or("rinval-v2"));
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let stm = Stm::builder(algo).heap_words(1 << 12).build();
    println!("bank: {} transfer threads + 1 auditor, algorithm {}", threads, algo.name());

    let accounts = stm.alloc(ACCOUNTS);
    for i in 0..ACCOUNTS {
        stm.poke(accounts.field(i as u32), INITIAL);
    }
    let expected = INITIAL * ACCOUNTS as u64;
    let transfers_done = AtomicU64::new(0);
    let transfers_done = &transfers_done;
    let stm_ref = &stm;

    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut th = stm_ref.register_thread();
                let mut seed = 0x1234_5678 ^ (t + 1);
                for _ in 0..20_000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = seed % 50;
                    th.run(|tx| {
                        let f = tx.read(accounts.field(from as u32))?;
                        if f < amount {
                            return Ok(()); // insufficient funds; no-op
                        }
                        let g = tx.read(accounts.field(to as u32))?;
                        tx.write(accounts.field(from as u32), f - amount)?;
                        tx.write(accounts.field(to as u32), g + amount)
                    });
                    transfers_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(move || {
            let mut th = stm_ref.register_thread();
            let mut audits = 0u64;
            loop {
                let total = th.run(|tx| {
                    let mut sum = 0u64;
                    for i in 0..ACCOUNTS {
                        sum += tx.read(accounts.field(i as u32))?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected, "AUDIT VIOLATION: torn snapshot observed!");
                audits += 1;
                if transfers_done.load(Ordering::Relaxed) >= threads as u64 * 20_000 {
                    println!("auditor: {audits} audits, every one saw the conserved total {expected}");
                    break;
                }
                std::thread::yield_now();
            }
        });
    });

    let final_total: u64 = (0..ACCOUNTS)
        .map(|i| stm.peek(accounts.field(i as u32)))
        .sum();
    println!(
        "final ledger total: {final_total} (expected {expected}) — {}",
        if final_total == expected { "OK" } else { "BROKEN" }
    );
    assert_eq!(final_total, expected);
}
