//! A concurrent bank: transfer transactions race with full-ledger audits.
//!
//! The audit transaction sums every account *inside one transaction*, so
//! under an opaque STM it must always observe the conserved total — run
//! with any algorithm and watch zero violations. This is the classic
//! snapshot-consistency demo the paper's opacity guarantee (§IV-E)
//! enables.
//!
//! ```sh
//! cargo run --example bank [algorithm] [threads]
//! # e.g.
//! cargo run --example bank rinval-v2 4
//! ```
//!
//! With `--serve`, the same workload runs through the `svc` front-end
//! instead of hand-rolled thread loops: each transfer thread becomes a
//! thin client submitting idempotent requests (retrying on shed with the
//! same key), and the auditor becomes a read endpoint served via `run_ro`:
//!
//! ```sh
//! cargo run --example bank -- rinval-v2 4 --serve
//! ```

use rinval_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const ACCOUNTS: usize = 64;
const INITIAL: u64 = 1_000;

fn parse_algorithm(name: &str) -> AlgorithmKind {
    match name {
        "coarse-lock" => AlgorithmKind::CoarseLock,
        "tml" => AlgorithmKind::Tml,
        "norec" => AlgorithmKind::NOrec,
        "tl2" => AlgorithmKind::Tl2,
        "invalstm" => AlgorithmKind::InvalStm,
        "rinval-v1" => AlgorithmKind::RInvalV1,
        "rinval-v2" => AlgorithmKind::RInvalV2 { invalidators: 2 },
        "rinval-v3" => AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 4,
        },
        other => {
            eprintln!("unknown algorithm '{other}', using rinval-v2");
            AlgorithmKind::RInvalV2 { invalidators: 2 }
        }
    }
}

/// The `--serve` mode: the same conserved ledger, fronted by the service
/// layer. Thin clients retry-with-backoff on shed and reuse idempotency
/// keys, so every transfer lands exactly once even under admission
/// control.
fn serve_mode(algo: AlgorithmKind, threads: usize) {
    const TRANSFERS_PER_CLIENT: u64 = 2_000;
    let stm = Stm::builder(algo).heap_words(1 << 14).build();
    let bank = svc::bank::BankService::setup(&stm, ACCOUNTS as u64, INITIAL);
    let cfg = svc::SvcConfig {
        workers: threads,
        clients: threads as u64 + 1,
        ..svc::SvcConfig::default()
    };
    println!(
        "bank --serve: {threads} thin clients + 1 auditor over {} workers, algorithm {}",
        cfg.workers,
        algo.name()
    );
    svc::serve(&stm, &bank, &cfg, |front| {
        std::thread::scope(|s| {
            for c in 0..threads as u64 {
                s.spawn(move || {
                    let mut seed = 0x1234_5678 ^ (c + 1);
                    for key in 1..=TRANSFERS_PER_CLIENT {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let req = svc::Request {
                            client: c,
                            key,
                            endpoint: svc::bank::EP_TRANSFER,
                            args: [seed >> 33, seed >> 13, seed % 50, 0],
                        };
                        // Closed loop: the same key retries until acked.
                        loop {
                            match front.call(req, Duration::from_secs(5)) {
                                Ok(_) => break,
                                Err(svc::SvcError::Shutdown) => return,
                                Err(_) => std::thread::sleep(Duration::from_micros(200)),
                            }
                        }
                    }
                });
            }
            s.spawn(move || {
                let auditor = threads as u64; // client id reserved for reads
                let expected = INITIAL * ACCOUNTS as u64;
                let mut audits = 0u64;
                loop {
                    let req = svc::Request {
                        client: auditor,
                        key: 0,
                        endpoint: svc::bank::EP_AUDIT,
                        args: [0; 4],
                    };
                    match front.call(req, Duration::from_secs(5)) {
                        Ok(total) => {
                            assert_eq!(total, expected, "AUDIT VIOLATION: torn snapshot!");
                            audits += 1;
                        }
                        Err(svc::SvcError::Shutdown) => return,
                        Err(_) => {}
                    }
                    let done: u64 = (0..threads as u64).map(|c| front.applied_ops(c)).sum();
                    if done >= threads as u64 * TRANSFERS_PER_CLIENT {
                        println!("auditor: {audits} audits, every one saw the conserved total {expected}");
                        return;
                    }
                    std::thread::yield_now();
                }
            });
        });
        // The ledger certifies exactly-once delivery end to end.
        for c in 0..threads as u64 {
            assert_eq!(front.applied_ops(c), TRANSFERS_PER_CLIENT);
        }
        let stats = front.stats();
        println!(
            "service: accepted={} shed={} dedup_hits={} timeouts={}",
            stats.accepted, stats.shed_writes, stats.dedup_hits, stats.client_timeouts
        );
    });
    bank.verify(&stm).expect("conservation");
    println!("final ledger conserved — OK");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algo = parse_algorithm(args.get(1).map(String::as_str).unwrap_or("rinval-v2"));
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    if args.iter().any(|a| a == "--serve") {
        return serve_mode(algo, threads);
    }

    let stm = Stm::builder(algo).heap_words(1 << 12).build();
    println!("bank: {} transfer threads + 1 auditor, algorithm {}", threads, algo.name());

    let accounts = stm.alloc(ACCOUNTS);
    for i in 0..ACCOUNTS {
        stm.poke(accounts.field(i as u32), INITIAL);
    }
    let expected = INITIAL * ACCOUNTS as u64;
    let transfers_done = AtomicU64::new(0);
    let transfers_done = &transfers_done;
    let stm_ref = &stm;

    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut th = stm_ref.register_thread();
                let mut seed = 0x1234_5678 ^ (t + 1);
                for _ in 0..20_000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = seed % 50;
                    th.run(|tx| {
                        let f = tx.read(accounts.field(from as u32))?;
                        if f < amount {
                            return Ok(()); // insufficient funds; no-op
                        }
                        let g = tx.read(accounts.field(to as u32))?;
                        tx.write(accounts.field(from as u32), f - amount)?;
                        tx.write(accounts.field(to as u32), g + amount)
                    });
                    transfers_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(move || {
            let mut th = stm_ref.register_thread();
            let mut audits = 0u64;
            loop {
                let total = th.run(|tx| {
                    let mut sum = 0u64;
                    for i in 0..ACCOUNTS {
                        sum += tx.read(accounts.field(i as u32))?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected, "AUDIT VIOLATION: torn snapshot observed!");
                audits += 1;
                if transfers_done.load(Ordering::Relaxed) >= threads as u64 * 20_000 {
                    println!("auditor: {audits} audits, every one saw the conserved total {expected}");
                    break;
                }
                std::thread::yield_now();
            }
        });
    });

    let final_total: u64 = (0..ACCOUNTS)
        .map(|i| stm.peek(accounts.field(i as u32)))
        .sum();
    println!(
        "final ledger total: {final_total} (expected {expected}) — {}",
        if final_total == expected { "OK" } else { "BROKEN" }
    );
    assert_eq!(final_total, expected);
}
