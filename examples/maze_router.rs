//! STAMP-labyrinth live demo: concurrent maze routing with ASCII output.
//!
//! Several router threads claim disjoint paths through a shared grid
//! using the labyrinth pattern — long private BFS, then one short
//! all-or-nothing claim transaction. Afterwards the maze is printed with
//! each path labelled by a letter; overlapping claims are impossible by
//! construction and double-checked here.
//!
//! ```sh
//! cargo run --example maze_router [width] [height] [routes]
//! ```

use rinval_repro::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let width: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    let height: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let routes: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);

    let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
        .heap_words(1 << 14)
        .build();
    let grid = TBitmap::new(&stm, width * height);

    let cfg = stamp::labyrinth::Config {
        width,
        height,
        routes,
        seed: 0xCAFE,
    };
    let requests = stamp::labyrinth::generate_requests(&cfg);

    // Route concurrently (the same engine the Figure-8 benchmark uses,
    // inlined here so we can keep the paths for drawing).
    let next = AtomicUsize::new(0);
    let routed: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
    let stm_ref = &stm;
    let requests_ref = &requests;
    let next_ref = &next;
    let routed_ref = &routed;
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut th = stm_ref.register_thread();
                let cells = (width * height) as usize;
                let mut occupied = vec![false; cells];
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= requests_ref.len() {
                        break;
                    }
                    let (src, dst) = requests_ref[i];
                    'retry: for _ in 0..20 {
                        for (c, o) in occupied.iter_mut().enumerate() {
                            *o = stm_ref.peek(grid.word_handle(c as u64)) & (1 << (c as u64 % 64))
                                != 0;
                        }
                        let Some(path) = bfs(width, height, &occupied, src, dst) else {
                            break 'retry;
                        };
                        if th.run(|tx| grid.try_claim(tx, &path)) {
                            routed_ref.lock().unwrap().push(path);
                            break 'retry;
                        }
                    }
                }
            });
        }
    });

    let paths = routed.into_inner().unwrap();
    println!(
        "routed {}/{} requests on a {width}x{height} grid:",
        paths.len(),
        requests.len()
    );

    // Draw.
    let mut canvas = vec![b'.'; (width * height) as usize];
    for (i, p) in paths.iter().enumerate() {
        let label = b'a' + (i % 26) as u8;
        for &c in p {
            assert_eq!(canvas[c as usize], b'.', "two paths share cell {c}!");
            canvas[c as usize] = label;
        }
        canvas[p[0] as usize] = label.to_ascii_uppercase();
        canvas[*p.last().unwrap() as usize] = label.to_ascii_uppercase();
    }
    for y in 0..height {
        let rowstart = (y * width) as usize;
        println!(
            "  {}",
            std::str::from_utf8(&canvas[rowstart..rowstart + width as usize]).unwrap()
        );
    }
    let claimed: u64 = paths.iter().map(|p| p.len() as u64).sum();
    println!(
        "grid bits set: {} == cells drawn: {claimed} — disjointness verified",
        grid.popcount(&stm)
    );
    assert_eq!(grid.popcount(&stm), claimed);
}

/// Private BFS over an occupancy snapshot (same as the stamp crate's).
fn bfs(width: u64, height: u64, occupied: &[bool], src: u64, dst: u64) -> Option<Vec<u64>> {
    let cells = (width * height) as usize;
    let mut parent = vec![usize::MAX; cells];
    let mut queue = std::collections::VecDeque::new();
    parent[src as usize] = src as usize;
    queue.push_back(src as usize);
    while let Some(c) = queue.pop_front() {
        if c as u64 == dst {
            let mut path = vec![dst];
            let mut cur = c;
            while parent[cur] != cur {
                cur = parent[cur];
                path.push(cur as u64);
            }
            path.reverse();
            return Some(path);
        }
        let x = c as u64 % width;
        let y = c as u64 / width;
        let mut push = |n: u64| {
            let ni = n as usize;
            if parent[ni] == usize::MAX && !occupied[ni] {
                parent[ni] = c;
                queue.push_back(ni);
            }
        };
        if x > 0 {
            push(c as u64 - 1);
        }
        if x + 1 < width {
            push(c as u64 + 1);
        }
        if y > 0 {
            push(c as u64 - width);
        }
        if y + 1 < height {
            push(c as u64 + width);
        }
    }
    None
}
