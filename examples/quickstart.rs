//! Quickstart: the 60-second tour of the STM API.
//!
//! Builds an STM running the paper's RInval-V2 algorithm (one commit-
//! server plus two invalidation-servers on dedicated threads), then runs
//! concurrent counter increments and a composed multi-word transaction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rinval_repro::prelude::*;

fn main() {
    // Pick any algorithm here — the transactional code below is identical
    // for all of them. That interchangeability is the point of STM.
    let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 2 })
        .heap_words(1 << 12)
        .build();
    println!("algorithm: {}", stm.algorithm().name());

    // --- A shared counter, incremented from four threads. -----------------
    let counter = stm.alloc_init(&[0]);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut th = stm.register_thread();
                for _ in 0..10_000 {
                    th.run(|tx| {
                        let v = tx.read(counter)?;
                        tx.write(counter, v + 1)
                    });
                }
            });
        }
    });
    println!("counter after 4 x 10_000 increments: {}", stm.peek(counter));
    assert_eq!(stm.peek(counter), 40_000);

    // --- Composition: move value between two cells atomically. ------------
    let a = TVar::<i64>::new(&stm, 100);
    let b = TVar::<i64>::new(&stm, 0);
    let mut th = stm.register_thread();
    th.run(|tx| {
        let take = a.read(tx)?.min(30);
        a.modify(tx, |v| v - take)?;
        b.modify(tx, |v| v + take)?;
        Ok(())
    });
    println!("a = {}, b = {} (sum invariant: {})", a.peek(&stm), b.peek(&stm), a.peek(&stm) + b.peek(&stm));
    assert_eq!(a.peek(&stm) + b.peek(&stm), 100);

    // --- A transactional data structure. -----------------------------------
    let tree = RbTree::new(&stm);
    th.run(|tx| {
        for k in [5u64, 1, 9, 3, 7] {
            tree.insert(tx, k, k * 100)?;
        }
        Ok(())
    });
    let val = th.run(|tx| tree.get(tx, 7));
    println!("tree.get(7) = {val:?}; in-order keys = {:?}", tree.snapshot_keys(&stm));

    // Per-thread statistics — the paper's critical-path accounting.
    let stats = th.stats();
    println!(
        "this thread: {} commits, {} aborts, {} reads, {} writes",
        stats.commits, stats.aborts, stats.reads, stats.writes
    );
}
