//! The paper's red-black-tree micro-benchmark on *this* machine.
//!
//! Runs the Figure-7 workload (mixed lookups/inserts/removes, one
//! operation per transaction, 10 no-ops between transactions) with the
//! real implementations on host threads and prints a throughput table.
//! On a big multicore you will see the paper's shape directly; on a small
//! host the numbers mostly demonstrate correctness under oversubscription
//! (the tree's red-black invariants are re-verified after every cell).
//!
//! ```sh
//! cargo run --release --example rbtree_throughput [tree_size] [ms_per_point]
//! ```

use rinval_repro::prelude::*;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16 * 1024);
    let ms: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(250);

    let algorithms = [
        AlgorithmKind::NOrec,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV1,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ];
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= host_threads.max(4))
        .collect();

    println!(
        "red-black tree, {size} elements, 50% reads, {ms} ms/point, host has {host_threads} core(s)"
    );
    print!("{:>8}", "threads");
    for a in algorithms {
        print!("{:>12}", a.name());
    }
    println!("   [Ktx/s]");

    for &t in &sweep {
        print!("{t:>8}");
        for algo in algorithms {
            let cfg = stamp::rbtree_bench::Config {
                initial_size: size,
                read_pct: 50,
                delay_noops: 10,
                duration: Duration::from_millis(ms),
                seed: 99,
            };
            let stm = Stm::builder(algo).heap_words(cfg.heap_words()).build();
            let tree = stamp::rbtree_bench::setup(&stm, &cfg);
            let report = stamp::rbtree_bench::run_on(&stm, tree, t, &cfg);
            tree.check_invariants(&stm)
                .unwrap_or_else(|e| panic!("{} corrupted the tree: {e}", algo.name()));
            print!("{:>12.1}", report.throughput() / 1000.0);
        }
        println!();
    }
    println!("(every cell passed the full red-black invariant check)");
}
