//! STAMP-vacation live demo: a travel-reservation OLTP mix.
//!
//! Runs the vacation transaction mix (reservations, customer deletions,
//! price updates) concurrently, then prints the booked totals and proves
//! the money/inventory conservation invariants — the checks that make the
//! Figure-8 timings trustworthy.
//!
//! ```sh
//! cargo run --example travel_agency [threads] [transactions]
//! ```

use rinval::{AlgorithmKind, Stm};
use stamp::vacation::{self, Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let transactions: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3_000);

    let cfg = Config {
        resources: 128,
        customers: 64,
        initial_avail: 50,
        transactions,
        queries: 6,
        reserve_pct: 80,
        seed: 0x7A7E,
    };

    for algo in [
        AlgorithmKind::NOrec,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ] {
        let stm = Stm::builder(algo).heap_words(1 << 20).build();
        match vacation::run_verified(&stm, threads, &cfg) {
            Ok(report) => {
                println!(
                    "{:>10}: {} reservations booked by {} threads in {:.1} ms \
                     ({} commits, {} aborts) — all conservation invariants hold",
                    algo.name(),
                    report.checksum,
                    threads,
                    report.wall.as_secs_f64() * 1000.0,
                    report.stats.commits,
                    report.stats.aborts,
                );
            }
            Err(e) => panic!("{}: INVARIANT VIOLATION: {e}", algo.name()),
        }
    }
}
