//! STAMP-vacation live demo: a travel-reservation OLTP mix.
//!
//! Runs the vacation transaction mix (reservations, customer deletions,
//! price updates) concurrently, then prints the booked totals and proves
//! the money/inventory conservation invariants — the checks that make the
//! Figure-8 timings trustworthy.
//!
//! ```sh
//! cargo run --example travel_agency [threads] [transactions]
//! ```
//!
//! With `--serve`, the mix runs through the `svc` front-end as typed
//! endpoints (reserve/release/reprice writes, quote reads): each thread
//! becomes a thin client with idempotent retries, and the same
//! conservation invariants are verified at the end:
//!
//! ```sh
//! cargo run --example travel_agency -- 4 3000 --serve
//! ```

use rinval::{AlgorithmKind, Stm};
use stamp::vacation::{self, Config};
use stamp::SplitMix;
use std::time::Duration;

fn serve_mode(threads: usize, transactions: usize, cfg: Config) {
    let per_client = (transactions / threads.max(1)).max(1) as u64;
    for algo in [
        AlgorithmKind::NOrec,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ] {
        let stm = Stm::builder(algo).heap_words(1 << 20).build();
        let agency = svc::travel::TravelService::setup(&stm, cfg.clone());
        let svc_cfg = svc::SvcConfig {
            workers: threads,
            clients: threads as u64,
            ..svc::SvcConfig::default()
        };
        let started = std::time::Instant::now();
        svc::serve(&stm, &agency, &svc_cfg, |front| {
            std::thread::scope(|s| {
                for c in 0..threads as u64 {
                    s.spawn(move || {
                        let mut rng = SplitMix::new(cfg.seed ^ ((c + 1) << 20));
                        for key in 1..=per_client {
                            let kind = rng.below(100);
                            let (endpoint, args) = if kind < cfg.reserve_pct {
                                (
                                    svc::travel::EP_RESERVE,
                                    [rng.below(3), rng.below(cfg.customers), rng.next_u64(), 0],
                                )
                            } else if kind < cfg.reserve_pct + (100 - cfg.reserve_pct) / 2 {
                                (svc::travel::EP_RELEASE, [rng.below(cfg.customers), 0, 0, 0])
                            } else {
                                (
                                    svc::travel::EP_REPRICE,
                                    [rng.below(3), rng.below(cfg.resources), rng.below(450), 0],
                                )
                            };
                            let req = svc::Request {
                                client: c,
                                key,
                                endpoint,
                                args,
                            };
                            loop {
                                match front.call(req, Duration::from_secs(5)) {
                                    Ok(_) => break,
                                    Err(svc::SvcError::Shutdown) => return,
                                    Err(_) => std::thread::sleep(Duration::from_micros(200)),
                                }
                            }
                            // An occasional quote rides along read-only.
                            if rng.below(4) == 0 {
                                let quote = svc::Request {
                                    client: c,
                                    key: 0,
                                    endpoint: svc::travel::EP_QUOTE,
                                    args: [rng.below(3), rng.next_u64(), 0, 0],
                                };
                                let _ = front.call(quote, Duration::from_secs(5));
                            }
                        }
                    });
                }
            });
            let stats = front.stats();
            println!(
                "{:>10}: served {} writes + {} reads through {} workers in {:.1} ms \
                 (shed={} dedup_hits={})",
                algo.name(),
                stats.executed_writes,
                stats.executed_reads,
                svc_cfg.workers,
                started.elapsed().as_secs_f64() * 1000.0,
                stats.shed_writes,
                stats.dedup_hits,
            );
        });
        match agency.verify(&stm) {
            Ok(()) => println!("{:>10}: all conservation invariants hold", algo.name()),
            Err(e) => panic!("{}: INVARIANT VIOLATION: {e}", algo.name()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let transactions: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3_000);

    let cfg = Config {
        resources: 128,
        customers: 64,
        initial_avail: 50,
        transactions,
        queries: 6,
        reserve_pct: 80,
        seed: 0x7A7E,
    };

    if args.iter().any(|a| a == "--serve") {
        return serve_mode(threads, transactions, cfg);
    }

    for algo in [
        AlgorithmKind::NOrec,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ] {
        let stm = Stm::builder(algo).heap_words(1 << 20).build();
        match vacation::run_verified(&stm, threads, &cfg) {
            Ok(report) => {
                println!(
                    "{:>10}: {} reservations booked by {} threads in {:.1} ms \
                     ({} commits, {} aborts) — all conservation invariants hold",
                    algo.name(),
                    report.checksum,
                    threads,
                    report.wall.as_secs_f64() * 1000.0,
                    report.stats.commits,
                    report.stats.aborts,
                );
            }
            Err(e) => panic!("{}: INVARIANT VIOLATION: {e}", algo.name()),
        }
    }
}
