//! # rinval-repro — Remote Invalidation, reproduced in Rust
//!
//! Umbrella crate for the reproduction of *"Remote Invalidation:
//! Optimizing the Critical Path of Memory Transactions"* (Hassan,
//! Palmieri, Ravindran — IPDPS 2014). It re-exports the four member
//! crates:
//!
//! * [`rinval`] — the STM library: NOrec, InvalSTM and RInval V1/V2/V3
//!   over a word-based transactional heap.
//! * [`txds`] — transactional data structures (red-black tree, sorted
//!   list, hash map, queue, bitmap, arrays).
//! * [`stamp`] — STAMP-like benchmark applications with verifiers.
//! * [`simcore`] — the deterministic 64-core discrete-event simulator
//!   used to regenerate the paper's figures on small hosts.
//!
//! See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the
//! reproduction methodology and results.

pub use rinval;
pub use simcore;
pub use stamp;
pub use txds;

/// Convenience re-export of the most common entry points.
pub mod prelude {
    pub use rinval::{AlgorithmKind, Handle, Stm, TVar, ThreadHandle, TxResult, Txn};
    pub use txds::{RbTree, TBitmap, THashMap, TQueue, TSortedList};
}
