//! Cross-structure composition: one transaction spanning several
//! transactional data structures must be atomic as a whole — the
//! composability STM promises over hand-made fine-grained structures
//! (the paper's §I programmability argument).

use rinval::{AlgorithmKind, Stm};
use txds::{RbTree, THashMap, TQueue};

fn algorithms() -> [AlgorithmKind; 4] {
    [
        AlgorithmKind::NOrec,
        AlgorithmKind::Tl2,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ]
}

/// Move items between a tree and a map atomically; concurrent observers
/// must always find each key in exactly one container.
#[test]
fn items_live_in_exactly_one_container() {
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 16).build();
        let tree = RbTree::new(&stm);
        let map = THashMap::new(&stm, 16);
        const KEYS: u64 = 16;
        {
            let mut th = stm.register_thread();
            for k in 0..KEYS {
                th.run(|tx| tree.insert(tx, k, k * 10));
            }
        }
        let stm = &stm;
        std::thread::scope(|s| {
            // Movers bounce keys between the two containers.
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    let mut seed = t + 5;
                    for _ in 0..200 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = (seed >> 33) % KEYS;
                        th.run(|tx| {
                            if let Some(v) = tree.remove(tx, k)? {
                                map.insert(tx, k, v)?;
                            } else if let Some(v) = map.remove(tx, k)? {
                                tree.insert(tx, k, v)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            // Observers: every key is in exactly one container, with its
            // original value.
            for _ in 0..2 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for _ in 0..150 {
                        for k in 0..KEYS {
                            let (in_tree, in_map) = th.run(|tx| {
                                Ok((tree.get(tx, k)?, map.get(tx, k)?))
                            });
                            match (in_tree, in_map) {
                                (Some(v), None) | (None, Some(v)) => {
                                    assert_eq!(v, k * 10, "value corrupted under {algo:?}")
                                }
                                (Some(_), Some(_)) => {
                                    panic!("key {k} in both containers under {algo:?}")
                                }
                                (None, None) => {
                                    panic!("key {k} vanished under {algo:?}")
                                }
                            }
                        }
                    }
                });
            }
        });
        tree.check_invariants(stm).unwrap();
        map.check_invariants(stm).unwrap();
        let total = tree.snapshot_keys(stm).len() + map.snapshot(stm).len();
        assert_eq!(total as u64, KEYS);
    }
}

/// Work-queue + ledger pipeline: dequeue a job and record its completion
/// in the tree within one transaction; jobs are processed exactly once
/// even under races.
#[test]
fn queue_to_tree_pipeline_is_exactly_once() {
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 16).build();
        let jobs = TQueue::new(&stm);
        let done = RbTree::new(&stm);
        const N: u64 = 200;
        {
            let mut th = stm.register_thread();
            for j in 0..N {
                th.run(|tx| jobs.enqueue(tx, j));
            }
        }
        let stm = &stm;
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    loop {
                        let got = th.run(|tx| {
                            let Some(j) = jobs.dequeue(tx)? else {
                                return Ok(false);
                            };
                            // exactly-once: insert must be fresh.
                            let fresh = done.insert(tx, j, 1)?;
                            assert!(fresh, "job {j} processed twice under {algo:?}");
                            Ok(true)
                        });
                        if !got {
                            break;
                        }
                    }
                });
            }
        });
        assert_eq!(done.snapshot_keys(stm).len() as u64, N);
        done.check_invariants(stm).unwrap();
    }
}
