//! Opacity stress tests (paper §IV-E): no transaction — committed *or
//! doomed* — may ever observe an inconsistent snapshot. The assertions
//! run *inside* the transaction bodies, so a zombie execution reading a
//! torn state trips them before any commit-time check could mask it.

use rinval::{AlgorithmKind, Stm};
use std::sync::atomic::{AtomicBool, Ordering};

fn all_algorithms() -> [AlgorithmKind; 8] {
    [
        AlgorithmKind::CoarseLock,
        AlgorithmKind::Tml,
        AlgorithmKind::NOrec,
        AlgorithmKind::Tl2,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV1,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
        AlgorithmKind::RInvalV3 {
            invalidators: 2,
            steps_ahead: 3,
        },
    ]
}

/// Writers keep `x² == y` (writing both together); in-flight readers must
/// never see the square relation broken, even on attempts that later
/// abort.
#[test]
fn zombie_transactions_never_see_torn_invariants() {
    for algo in all_algorithms() {
        let stm = Stm::builder(algo).heap_words(256).build();
        let x = stm.alloc_init(&[2]);
        let y = stm.alloc_init(&[4]);
        let stm = &stm;
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for i in 2..200u64 {
                        th.run(|tx| {
                            tx.write(x, i)?;
                            tx.write(y, i * i)
                        });
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for _ in 0..400 {
                        th.run(|tx| {
                            let a = tx.read(x)?;
                            let b = tx.read(y)?;
                            // The opacity assertion: holds on EVERY
                            // execution of the body, aborted ones included.
                            assert_eq!(
                                a * a,
                                b,
                                "torn read inside a transaction under {algo:?}"
                            );
                            Ok(())
                        });
                    }
                });
            }
        });
    }
}

/// A chain of cells where each points at the next version of the list;
/// readers walk the chain and must always reach a consistent tail.
#[test]
fn pointer_chains_stay_consistent() {
    for algo in all_algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 14).build();
        // head -> node(version, payload). Writers atomically swing head to
        // a fresh node whose payload equals version * 7.
        let head = stm.alloc(1);
        let first = stm.alloc_init(&[0, 0]);
        stm.poke(head, first.to_word());
        let stm = &stm;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut th = stm.register_thread();
                for v in 1..300u64 {
                    th.run(|tx| {
                        let node = tx.alloc(2)?;
                        tx.init(node.field(0), v);
                        tx.init(node.field(1), v * 7);
                        tx.write(head, node.to_word())
                    });
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    for _ in 0..500 {
                        th.run(|tx| {
                            let n = tx.read_handle(head)?;
                            let v = tx.read(n.field(0))?;
                            let p = tx.read(n.field(1))?;
                            assert_eq!(p, v * 7, "stale/torn node under {algo:?}");
                            Ok(())
                        });
                    }
                });
            }
        });
    }
}

/// Read-only snapshots across many words taken while two writer gangs
/// permute values: the multiset of observed values must be intact
/// (writers swap values between slots, never create or destroy them).
#[test]
fn multiword_snapshots_are_permutations() {
    const N: usize = 12;
    for algo in all_algorithms() {
        let stm = Stm::builder(algo).heap_words(256).build();
        let arr = stm.alloc(N);
        for i in 0..N {
            stm.poke(arr.field(i as u32), i as u64);
        }
        let stm = &stm;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    let mut th = stm.register_thread();
                    let mut seed = t * 31 + 7;
                    for _ in 0..300 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (seed >> 30) as usize % N;
                        let j = (seed >> 10) as usize % N;
                        th.run(|tx| {
                            let a = tx.read(arr.field(i as u32))?;
                            let b = tx.read(arr.field(j as u32))?;
                            tx.write(arr.field(i as u32), b)?;
                            tx.write(arr.field(j as u32), a)
                        });
                    }
                });
            }
            s.spawn(move || {
                let mut th = stm.register_thread();
                for _ in 0..200 {
                    let snapshot = th.run(|tx| {
                        let mut vals = [0u64; N];
                        for (i, v) in vals.iter_mut().enumerate() {
                            *v = tx.read(arr.field(i as u32))?;
                        }
                        Ok(vals)
                    });
                    let mut sorted = snapshot;
                    sorted.sort_unstable();
                    let expected: Vec<u64> = (0..N as u64).collect();
                    assert_eq!(
                        sorted.to_vec(),
                        expected,
                        "snapshot is not a permutation under {algo:?}"
                    );
                }
            });
        });
    }
}

/// Servers must not apply a write-set after answering ABORTED: an aborted
/// transaction's writes may never become visible.
#[test]
fn aborted_transactions_leave_no_trace() {
    for algo in all_algorithms() {
        let stm = Stm::builder(algo).heap_words(256).build();
        let flag = stm.alloc_init(&[0]);
        let data = stm.alloc_init(&[0]);
        let saw_data_without_flag = AtomicBool::new(false);
        let stm = &stm;
        let witness = &saw_data_without_flag;
        std::thread::scope(|s| {
            // This thread repeatedly tries a transaction that writes data
            // then deliberately aborts; data must never stick.
            s.spawn(move || {
                let mut th = stm.register_thread();
                for _ in 0..300 {
                    let _: rinval::TxResult<()> = th.try_run(1, |tx| {
                        tx.write(data, 777)?;
                        tx.user_abort()
                    });
                }
            });
            // Legitimate writers set data and flag together.
            s.spawn(move || {
                let mut th = stm.register_thread();
                for i in 0..300u64 {
                    th.run(|tx| {
                        tx.write(data, i)?;
                        tx.write(flag, 1)
                    });
                }
            });
            s.spawn(move || {
                let mut th = stm.register_thread();
                for _ in 0..600 {
                    let (f, d) = th.run(|tx| Ok((tx.read(flag)?, tx.read(data)?)));
                    if d == 777 && f <= 1 {
                        witness.store(true, Ordering::Relaxed);
                    }
                }
            });
        });
        assert!(
            !saw_data_without_flag.load(Ordering::Relaxed),
            "aborted write leaked into shared memory under {algo:?}"
        );
        assert_ne!(stm.peek(data), 777, "aborted write persisted under {algo:?}");
    }
}
