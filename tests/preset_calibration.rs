//! Calibration anchors: the simulator's workload presets claim to encode
//! the *measured* transactional profile of the real applications. These
//! tests run the real implementations with counters on and check the
//! presets' read/write-set sizes and read-only fractions against reality
//! (within generous factors — the presets describe the paper-scale
//! configurations, the tests run reduced ones).

use rinval::{AlgorithmKind, Stm};

struct Profile {
    reads_per_commit: f64,
    writes_per_commit: f64,
}

fn measure(app: stamp::App) -> Profile {
    let stm = Stm::builder(AlgorithmKind::NOrec)
        .heap_words(app.default_heap_words())
        .build();
    let (report, verdict) = app.run_small(&stm, 2);
    verdict.unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    let c = report.stats.commits.max(1) as f64;
    Profile {
        reads_per_commit: report.stats.reads as f64 / c,
        writes_per_commit: report.stats.writes as f64 / c,
    }
}

/// ssca2's simulated transactions are tiny; the real ones must be too.
#[test]
fn ssca2_profile_is_tiny() {
    let p = measure(stamp::App::Ssca2);
    assert!(
        p.reads_per_commit < 25.0,
        "ssca2 reads/commit {} is not 'tiny'",
        p.reads_per_commit
    );
    assert!(p.writes_per_commit < 12.0);
}

/// kmeans: short accumulator write transactions (reads ≈ writes).
#[test]
fn kmeans_profile_is_short_and_write_heavy() {
    let p = measure(stamp::App::Kmeans);
    assert!(p.reads_per_commit < 20.0, "reads {}", p.reads_per_commit);
    assert!(
        p.writes_per_commit > 0.5 * p.reads_per_commit,
        "kmeans writes {} should be comparable to reads {}",
        p.writes_per_commit,
        p.reads_per_commit
    );
}

/// vacation: read-dominated (the preset claims reads ≫ 10× writes).
#[test]
fn vacation_profile_is_read_dominated() {
    let p = measure(stamp::App::Vacation);
    assert!(
        p.reads_per_commit > 5.0 * p.writes_per_commit,
        "vacation reads {} vs writes {}",
        p.reads_per_commit,
        p.writes_per_commit
    );
    assert!(
        p.reads_per_commit > 20.0,
        "vacation should have large read sets, got {}",
        p.reads_per_commit
    );
}

/// genome: read-dominated dedup.
#[test]
fn genome_profile_is_read_dominated() {
    let p = measure(stamp::App::Genome);
    assert!(
        p.reads_per_commit > 2.0 * p.writes_per_commit,
        "genome reads {} vs writes {}",
        p.reads_per_commit,
        p.writes_per_commit
    );
}

/// labyrinth/bayes: transactional work is a sliver of total time. Run
/// with profiling and check "other" dominates even at this small scale.
///
/// This is a wall-clock ratio: on an oversubscribed host (1-core CI) a
/// single deschedule inside a probed phase can inflate it past the bar,
/// so allow a couple of re-measurements before declaring failure.
#[test]
fn labyrinth_and_bayes_are_nontx_dominated() {
    for app in [stamp::App::Labyrinth, stamp::App::Bayes] {
        let mut last = (0.0, 0.0, 0.0);
        let dominated = (0..3).any(|_| {
            let stm = Stm::builder(AlgorithmKind::NOrec)
                .heap_words(app.default_heap_words())
                .profile(true)
                .build();
            let (report, verdict) = app.run_small(&stm, 2);
            verdict.unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            let busy = report.wall * 2;
            let (v, c, o) = report.stats.breakdown(busy);
            last = (v, c, o);
            o > v + c
        });
        let (v, c, o) = last;
        assert!(
            dominated,
            "{}: other {o:.2} should dominate validation {v:.2} + commit {c:.2}",
            app.name()
        );
    }
}

/// The red-black-tree workload's read-set should be ~2·log2(n): the basis
/// for the rbtree preset's `reads: 34` at 64K elements.
#[test]
fn rbtree_read_set_scales_logarithmically() {
    let mut per_size = Vec::new();
    for size in [256u64, 4096] {
        let cfg = stamp::rbtree_bench::Config {
            initial_size: size,
            read_pct: 100, // lookups only: clean read-set measurement
            delay_noops: 0,
            duration: std::time::Duration::from_millis(80),
            seed: 5,
        };
        let stm = Stm::builder(AlgorithmKind::NOrec)
            .heap_words(cfg.heap_words())
            .build();
        let tree = stamp::rbtree_bench::setup(&stm, &cfg);
        let report = stamp::rbtree_bench::run_on(&stm, tree, 1, &cfg);
        let rpc = report.stats.reads as f64 / report.stats.commits.max(1) as f64;
        per_size.push((size, rpc));
    }
    let (s0, r0) = per_size[0];
    let (s1, r1) = per_size[1];
    assert!(
        r1 > r0,
        "bigger tree must mean longer paths ({s0}:{r0:.1} vs {s1}:{r1:.1})"
    );
    // 16x size = +4 levels; reads grow far less than 2x.
    assert!(
        r1 < r0 * 2.0,
        "read-set growth should be logarithmic ({r0:.1} -> {r1:.1})"
    );
}
