//! Property-based tests: arbitrary operation sequences applied to the
//! transactional structures must match the standard-library model, under
//! a validation-based algorithm (NOrec) and an invalidation-based one
//! with live server threads (RInval-V2).

use proptest::prelude::*;
use rinval::{AlgorithmKind, Stm};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use txds::{RbTree, THashMap, TQueue, TSortedList};

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_ops(max_key: u64) -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_key, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0..max_key).prop_map(MapOp::Remove),
            (0..max_key).prop_map(MapOp::Get),
        ],
        1..120,
    )
}

fn algorithms() -> [AlgorithmKind; 2] {
    [
        AlgorithmKind::NOrec,
        AlgorithmKind::RInvalV2 { invalidators: 1 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn rbtree_matches_btreemap(ops in map_ops(32)) {
        for algo in algorithms() {
            let stm = Stm::builder(algo).heap_words(1 << 14).build();
            let tree = RbTree::new(&stm);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut th = stm.register_thread();
            for op in &ops {
                match *op {
                    MapOp::Insert(k, v) => {
                        let fresh = th.run(|tx| tree.insert(tx, k, v));
                        prop_assert_eq!(fresh, model.insert(k, v).is_none());
                    }
                    MapOp::Remove(k) => {
                        let got = th.run(|tx| tree.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        let got = th.run(|tx| tree.get(tx, k));
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                }
            }
            drop(th);
            tree.check_invariants(&stm).map_err(|e| {
                TestCaseError::fail(format!("invariants under {algo:?}: {e}"))
            })?;
            let keys: Vec<u64> = model.keys().copied().collect();
            prop_assert_eq!(tree.snapshot_keys(&stm), keys);
        }
    }

    #[test]
    fn hashmap_matches_btreemap(ops in map_ops(24)) {
        for algo in algorithms() {
            let stm = Stm::builder(algo).heap_words(1 << 14).build();
            let map = THashMap::new(&stm, 4); // few buckets: long chains
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut th = stm.register_thread();
            for op in &ops {
                match *op {
                    MapOp::Insert(k, v) => {
                        let fresh = th.run(|tx| map.insert(tx, k, v));
                        prop_assert_eq!(fresh, model.insert(k, v).is_none());
                    }
                    MapOp::Remove(k) => {
                        let got = th.run(|tx| map.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        let got = th.run(|tx| map.get(tx, k));
                        prop_assert_eq!(got, model.get(&k).copied());
                    }
                }
            }
            drop(th);
            map.check_invariants(&stm).map_err(|e| {
                TestCaseError::fail(format!("invariants under {algo:?}: {e}"))
            })?;
        }
    }

    #[test]
    fn sorted_list_matches_btreeset(ops in map_ops(24)) {
        for algo in algorithms() {
            let stm = Stm::builder(algo).heap_words(1 << 14).build();
            let list = TSortedList::new(&stm);
            let mut model: BTreeSet<u64> = BTreeSet::new();
            let mut th = stm.register_thread();
            for op in &ops {
                match *op {
                    MapOp::Insert(k, _) => {
                        let fresh = th.run(|tx| list.insert(tx, k));
                        prop_assert_eq!(fresh, model.insert(k));
                    }
                    MapOp::Remove(k) => {
                        let got = th.run(|tx| list.remove(tx, k));
                        prop_assert_eq!(got, model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        let got = th.run(|tx| list.contains(tx, k));
                        prop_assert_eq!(got, model.contains(&k));
                    }
                }
            }
            drop(th);
            list.check_invariants(&stm).map_err(|e| {
                TestCaseError::fail(format!("invariants under {algo:?}: {e}"))
            })?;
        }
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(any::<u64>()), 1..100)) {
        // Some(v) = enqueue v, None = dequeue.
        for algo in algorithms() {
            let stm = Stm::builder(algo).heap_words(1 << 12).build();
            let q = TQueue::new(&stm);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut th = stm.register_thread();
            for op in &ops {
                match *op {
                    Some(v) => {
                        th.run(|tx| q.enqueue(tx, v));
                        model.push_back(v);
                    }
                    None => {
                        let got = th.run(|tx| q.dequeue(tx));
                        prop_assert_eq!(got, model.pop_front());
                    }
                }
            }
            drop(th);
            prop_assert_eq!(q.snapshot(&stm), model.into_iter().collect::<Vec<_>>());
        }
    }

    /// Multi-operation transactions are atomic: applying a batch of ops in
    /// ONE transaction equals applying them to the model sequentially.
    #[test]
    fn composed_transactions_are_atomic(batches in prop::collection::vec(map_ops(16), 1..10)) {
        let stm = Stm::builder(AlgorithmKind::RInvalV2 { invalidators: 1 })
            .heap_words(1 << 14)
            .build();
        let tree = RbTree::new(&stm);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut th = stm.register_thread();
        for batch in &batches {
            th.run(|tx| {
                for op in batch {
                    match *op {
                        MapOp::Insert(k, v) => {
                            tree.insert(tx, k, v)?;
                        }
                        MapOp::Remove(k) => {
                            tree.remove(tx, k)?;
                        }
                        MapOp::Get(k) => {
                            tree.get(tx, k)?;
                        }
                    }
                }
                Ok(())
            });
            for op in batch {
                match *op {
                    MapOp::Insert(k, v) => {
                        model.insert(k, v);
                    }
                    MapOp::Remove(k) => {
                        model.remove(&k);
                    }
                    MapOp::Get(_) => {}
                }
            }
        }
        drop(th);
        let keys: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(tree.snapshot_keys(&stm), keys);
        tree.check_invariants(&stm).map_err(TestCaseError::fail)?;
    }
}
