//! Sensitivity analysis: the reproduction's headline orderings must not
//! hinge on any single cost constant. Each test perturbs one constant of
//! the cache model substantially (±50% or more) and re-checks the
//! qualitative result. If a claim only held at the default constants it
//! would be curve-fitting, not reproduction.

use simcore::{simulate, CostModel, SimAlgorithm, SimConfig, Workload};

const V2: SimAlgorithm = SimAlgorithm::RInvalV2 { invalidators: 4 };

fn throughput_with(costs: CostModel, algo: SimAlgorithm, threads: usize, w: &Workload) -> f64 {
    let mut cfg = SimConfig::new(algo, threads, w.clone());
    cfg.duration_cycles = 6_000_000;
    cfg.costs = costs.clone();
    simulate(&cfg).commits as f64
}

/// At 48 threads on the rbtree workload, V2 must beat InvalSTM under every
/// perturbation of the coherence-miss cost.
#[test]
fn v2_beats_invalstm_across_miss_costs() {
    let w = simcore::presets::rbtree(50);
    for miss in [32u64, 64, 128] {
        let costs = CostModel {
            miss,
            ..CostModel::default()
        };
        let v2 = throughput_with(costs.clone(), V2, 48, &w);
        let inval = throughput_with(costs, SimAlgorithm::InvalStm, 48, &w);
        assert!(
            v2 > 2.0 * inval,
            "miss={miss}: v2 {v2} vs invalstm {inval}"
        );
    }
}

/// Same ordering across spin-penalty settings — including a *zero* spin
/// penalty, where InvalSTM's loss must still follow from its serialized
/// in-lock invalidation alone.
#[test]
fn v2_beats_invalstm_across_spin_penalties() {
    let w = simcore::presets::rbtree(50);
    for penalty in [0.0, 0.06, 0.12, 0.25] {
        let costs = CostModel {
            spin_penalty: penalty,
            ..CostModel::default()
        };
        let v2 = throughput_with(costs.clone(), V2, 48, &w);
        let inval = throughput_with(costs, SimAlgorithm::InvalStm, 48, &w);
        assert!(
            v2 > inval,
            "spin_penalty={penalty}: v2 {v2} vs invalstm {inval}"
        );
    }
}

/// NOrec's low-thread advantage survives halving/doubling the slot-scan
/// cost (which only burdens the invalidation side).
#[test]
fn norec_low_thread_advantage_across_scan_costs() {
    let w = simcore::presets::rbtree(50);
    for scan in [30u64, 60, 120] {
        let costs = CostModel {
            slot_scan: scan,
            ..CostModel::default()
        };
        let norec = throughput_with(costs.clone(), SimAlgorithm::NOrec, 4, &w);
        let inval = throughput_with(costs, SimAlgorithm::InvalStm, 4, &w);
        assert!(
            norec > 0.9 * inval,
            "slot_scan={scan}: norec {norec} vs invalstm {inval}"
        );
    }
}

/// Labyrinth's algorithm-insensitivity holds regardless of CAS cost: its
/// non-transactional dominance, not any synchronization constant, is the
/// mechanism.
#[test]
fn labyrinth_flatness_across_cas_costs() {
    let w = simcore::presets::labyrinth();
    for cas in [16u64, 48, 150] {
        let costs = CostModel {
            cas,
            ..CostModel::default()
        };
        let times: Vec<f64> = [SimAlgorithm::NOrec, SimAlgorithm::InvalStm, V2]
            .iter()
            .map(|&a| {
                let mut cfg = SimConfig::new(a, 24, w.clone());
                cfg.max_commits = 6_000;
                cfg.duration_cycles = u64::MAX / 4;
                cfg.costs = costs.clone();
                simulate(&cfg).wall_cycles as f64
            })
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.15, "cas={cas}: spread {:.2}", max / min);
    }
}

/// The genome/vacation result (NOrec ≥ RInval) is driven by the bloom
/// false-positive burden, and must invert when signatures are made
/// perfect — evidence the mechanism matches the paper's abort-dominance
/// explanation rather than an arbitrary slowdown of RInval.
#[test]
fn read_intensive_result_is_fp_driven() {
    let mut w = simcore::presets::vacation();
    let exec = |w: &Workload, algo| {
        let mut cfg = SimConfig::new(algo, 32, w.clone());
        cfg.max_commits = 12_000;
        cfg.duration_cycles = u64::MAX / 4;
        simulate(&cfg).wall_cycles as f64
    };
    // With the paper-scale false positives, NOrec wins.
    let norec = exec(&w, SimAlgorithm::NOrec);
    let v2 = exec(&w, V2);
    assert!(norec <= v2 * 1.05, "fp case: norec {norec} vs v2 {v2}");
    // With perfect signatures, the invalidation family catches up to (or
    // passes) NOrec.
    w.bloom_fp_prob = 0.0;
    let norec0 = exec(&w, SimAlgorithm::NOrec);
    let v20 = exec(&w, V2);
    assert!(
        v20 < norec0 * 1.1,
        "perfect-signature case: v2 {v20} should close on norec {norec0}"
    );
}

/// Determinism across perturbations: the same seed and config always
/// produce identical commit counts (no hidden nondeterminism in the
/// engine's event ordering).
#[test]
fn engine_is_deterministic_under_all_configs() {
    for algo in [
        SimAlgorithm::NOrec,
        SimAlgorithm::InvalStm,
        SimAlgorithm::RInvalV1,
        V2,
        SimAlgorithm::RInvalV3 {
            invalidators: 3,
            steps_ahead: 2,
        },
    ] {
        for threads in [1usize, 7, 33] {
            let mk = || {
                let mut cfg = SimConfig::new(algo, threads, simcore::presets::intruder());
                cfg.duration_cycles = 1_500_000;
                cfg.seed = 42;
                let r = simulate(&cfg);
                (r.commits, r.aborts, r.validation_cycles, r.commit_cycles)
            };
            assert_eq!(mk(), mk(), "{algo:?} t={threads}");
        }
    }
}
