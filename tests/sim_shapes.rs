//! Guards on the reproduced *shapes*: these tests assert the paper's
//! headline qualitative results hold in the simulated 64-core sweeps, so
//! a regression in an algorithm model or a cost constant that broke the
//! reproduction would fail CI — not just change a table nobody re-reads.

use simcore::{simulate, CostModel, SimAlgorithm, SimConfig};

fn throughput(algo: SimAlgorithm, threads: usize, w: &simcore::Workload) -> f64 {
    let mut cfg = SimConfig::new(algo, threads, w.clone());
    cfg.duration_cycles = 8_000_000;
    simulate(&cfg).throughput(&CostModel::default())
}

fn exec_time(algo: SimAlgorithm, threads: usize, w: &simcore::Workload) -> f64 {
    let mut cfg = SimConfig::new(algo, threads, w.clone());
    cfg.max_commits = 12_000;
    cfg.duration_cycles = u64::MAX / 4;
    simulate(&cfg).wall_seconds(&CostModel::default())
}

const V2: SimAlgorithm = SimAlgorithm::RInvalV2 { invalidators: 4 };

/// Fig. 7: "when contention is low (less than 16 threads), NOrec performs
/// better than [the invalidation] algorithms" — at 4 threads NOrec must
/// beat InvalSTM and RInval-V1 and be competitive with V2.
#[test]
fn fig7_norec_wins_at_low_threads() {
    for pct in [50, 80] {
        let w = simcore::presets::rbtree(pct);
        let norec = throughput(SimAlgorithm::NOrec, 4, &w);
        assert!(norec > 0.95 * throughput(SimAlgorithm::InvalStm, 4, &w));
        assert!(norec > 0.90 * throughput(V2, 4, &w), "{pct}% reads");
    }
}

/// Fig. 7: beyond 16 threads NOrec and InvalSTM degrade while RInval
/// sustains; at 48 threads V2 ≳ 1.5× NOrec and ≳ 4× InvalSTM.
#[test]
fn fig7_rinval_sustains_at_high_threads() {
    for pct in [50, 80] {
        let w = simcore::presets::rbtree(pct);
        let v2 = throughput(V2, 48, &w);
        let norec = throughput(SimAlgorithm::NOrec, 48, &w);
        let inval = throughput(SimAlgorithm::InvalStm, 48, &w);
        let v1 = throughput(SimAlgorithm::RInvalV1, 48, &w);
        assert!(v2 > 1.2 * norec, "{pct}%: v2 {v2} vs norec {norec}");
        // Paper: "up to 4x better than InvalSTM"; the read-heavy panel
        // narrows the gap (fewer committers to collapse), hence ≥3x there.
        let factor = if pct == 50 { 4.0 } else { 3.0 };
        assert!(v2 > factor * inval, "{pct}%: v2 {v2} vs invalstm {inval}");
        assert!(v1 > inval, "{pct}%: v1 must beat invalstm");
        // Degradation: both baselines fall from their 16-thread level.
        assert!(throughput(SimAlgorithm::InvalStm, 16, &w) > 1.5 * inval);
    }
}

/// Fig. 7 panel comparison: more reads help the validation-based
/// algorithm relatively more (read-only commits are free under NOrec).
#[test]
fn fig7_read_pct_shifts_crossover() {
    let w50 = simcore::presets::rbtree(50);
    let w80 = simcore::presets::rbtree(80);
    let ratio50 = throughput(SimAlgorithm::NOrec, 32, &w50) / throughput(V2, 32, &w50);
    let ratio80 = throughput(SimAlgorithm::NOrec, 32, &w80) / throughput(V2, 32, &w80);
    assert!(
        ratio80 > ratio50,
        "NOrec should close the gap with more reads ({ratio50:.2} -> {ratio80:.2})"
    );
}

/// Fig. 8 (kmeans, ssca2, intruder): "RInval-V2 has the best performance
/// starting from 24 threads, up to an order of magnitude better than
/// InvalSTM and 2x better than NOrec."
#[test]
fn fig8_writer_benchmarks_favor_rinval() {
    for name in ["kmeans", "ssca2", "intruder"] {
        let w = simcore::presets::by_name(name).unwrap();
        for t in [24usize, 32, 48] {
            let v2 = exec_time(V2, t, &w);
            let norec = exec_time(SimAlgorithm::NOrec, t, &w);
            let inval = exec_time(SimAlgorithm::InvalStm, t, &w);
            assert!(v2 < norec, "{name} t={t}: v2 {v2} !< norec {norec}");
            assert!(v2 < inval, "{name} t={t}: v2 !< invalstm");
        }
        // Order-of-magnitude gap vs InvalSTM somewhere in the sweep.
        let v2 = exec_time(V2, 48, &w);
        let inval = exec_time(SimAlgorithm::InvalStm, 48, &w);
        assert!(inval > 5.0 * v2, "{name}: invalstm {inval} vs v2 {v2}");
    }
}

/// Fig. 8 (genome, vacation): "NOrec is better than all invalidation
/// algorithms ... RInval is still better and closer to NOrec than
/// InvalSTM."
#[test]
fn fig8_read_intensive_benchmarks_favor_norec() {
    for name in ["genome", "vacation"] {
        let w = simcore::presets::by_name(name).unwrap();
        for t in [16usize, 32, 48] {
            let norec = exec_time(SimAlgorithm::NOrec, t, &w);
            let v2 = exec_time(V2, t, &w);
            let v1 = exec_time(SimAlgorithm::RInvalV1, t, &w);
            let inval = exec_time(SimAlgorithm::InvalStm, t, &w);
            assert!(
                norec <= v2 * 1.05,
                "{name} t={t}: norec {norec} should beat/match v2 {v2}"
            );
            assert!(v2 < inval, "{name} t={t}: rinval must beat invalstm");
            assert!(v1 < inval * 1.02, "{name} t={t}: v1 vs invalstm");
        }
    }
}

/// Fig. 8 (labyrinth) / §III: "in labyrinth, all algorithms perform the
/// same" — spread below 10% across the lineup at every thread count.
#[test]
fn fig8_labyrinth_is_algorithm_insensitive() {
    let w = simcore::presets::labyrinth();
    for t in [8usize, 24, 48] {
        let times: Vec<f64> = [
            SimAlgorithm::NOrec,
            SimAlgorithm::InvalStm,
            SimAlgorithm::RInvalV1,
            V2,
        ]
        .iter()
        .map(|&a| exec_time(a, t, &w))
        .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.15,
            "labyrinth t={t}: spread {:.2} too large ({times:?})",
            max / min
        );
    }
}

/// §IV-B: 4–8 invalidation-servers saturate RInval-V2's performance.
#[test]
fn ablation_invalidator_count_plateaus() {
    let w = simcore::presets::rbtree(50);
    let t1 = throughput(SimAlgorithm::RInvalV2 { invalidators: 1 }, 32, &w);
    let t4 = throughput(SimAlgorithm::RInvalV2 { invalidators: 4 }, 32, &w);
    let t8 = throughput(SimAlgorithm::RInvalV2 { invalidators: 8 }, 32, &w);
    assert!(t4 > 1.3 * t1, "4 servers should clearly beat 1 ({t1} -> {t4})");
    assert!(
        (t8 - t4).abs() / t4 < 0.10,
        "8 servers should add little over 4 ({t4} -> {t8})"
    );
}

/// §V future-work extension, both sides of the measured finding (see
/// EXPERIMENTS.md): a tight doom budget must not hurt genome (moderate
/// false conflicts, read-dominated), and must clearly hurt intruder
/// (every in-flight pair conflicts, so yielding committers livelock).
#[test]
fn ablation_reader_bias_mechanism() {
    let run = |name: &str, bias| {
        let w = simcore::presets::by_name(name).unwrap();
        let mut cfg = SimConfig::new(V2, 32, w);
        cfg.max_commits = 4_000;
        cfg.duration_cycles = u64::MAX / 4;
        cfg.reader_bias = bias;
        simulate(&cfg).wall_cycles as f64
    };
    let genome_wins = run("genome", None);
    let genome_bias = run("genome", Some(1));
    assert!(
        genome_bias <= genome_wins * 1.05,
        "reader bias must not hurt genome ({genome_wins} -> {genome_bias})"
    );
    let intruder_wins = run("intruder", None);
    let intruder_bias = run("intruder", Some(2));
    assert!(
        intruder_bias > 2.0 * intruder_wins,
        "reader bias should clearly hurt intruder ({intruder_wins} -> {intruder_bias})"
    );
}

/// §IV-C: under transient server stalls V3's run-ahead outperforms V2;
/// with no stalls they are equivalent (why the paper omits V3's curves).
#[test]
fn ablation_v3_absorbs_transient_stalls() {
    let w = simcore::presets::rbtree(50);
    let run = |algo, stall| {
        let mut cfg = SimConfig::new(algo, 24, w.clone());
        cfg.duration_cycles = 8_000_000;
        cfg.server_stall = stall;
        cfg.server_stall_every = 50;
        simulate(&cfg).throughput(&CostModel::default())
    };
    let v3 = SimAlgorithm::RInvalV3 {
        invalidators: 4,
        steps_ahead: 8,
    };
    let v2_clean = run(V2, 0);
    let v3_clean = run(v3, 0);
    assert!(
        (v2_clean - v3_clean).abs() / v2_clean < 0.05,
        "no stall: V3 ({v3_clean}) should equal V2 ({v2_clean})"
    );
    let v2_stall = run(V2, 16_000);
    let v3_stall = run(v3, 16_000);
    assert!(
        v3_stall > 1.05 * v2_stall,
        "stalled: V3 ({v3_stall}) should beat V2 ({v2_stall})"
    );
}
