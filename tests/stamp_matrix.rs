//! Cross-crate matrix: every STAMP-like application, verified, under
//! every algorithm family. Small configurations keep the matrix fast;
//! the point is end-to-end correctness of app × algorithm combinations,
//! not performance.

use rinval::{AlgorithmKind, Stm};

fn algorithms() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::Tml,
        AlgorithmKind::NOrec,
        AlgorithmKind::InvalStm,
        AlgorithmKind::RInvalV1,
        AlgorithmKind::RInvalV2 { invalidators: 2 },
    ]
}

#[test]
fn kmeans_converges_under_every_algorithm() {
    let cfg = stamp::kmeans::Config {
        points: 384,
        dims: 2,
        clusters: 4,
        iterations: 3,
        nontx_noops: 4,
        seed: 31,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 14).build();
        let report = stamp::kmeans::run(&stm, 2, &cfg);
        stamp::kmeans::verify(&cfg, &report).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn ssca2_graph_is_exact_under_every_algorithm() {
    let cfg = stamp::ssca2::Config {
        vertices: 128,
        edges: 500,
        locality_block: 16,
        seed: 32,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 14).build();
        let report = stamp::ssca2::run(&stm, 2, &cfg);
        stamp::ssca2::verify(&stm, &cfg, &report).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn genome_dedup_is_exact_under_every_algorithm() {
    let cfg = stamp::genome::Config {
        genome_len: 200,
        segment_len: 8,
        copies: 3,
        seed: 33,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 16).build();
        let report = stamp::genome::run(&stm, 2, &cfg);
        stamp::genome::verify(&cfg, &report).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn intruder_detects_exactly_planted_attacks_under_every_algorithm() {
    let cfg = stamp::intruder::Config {
        flows: 48,
        frags_per_flow: 4,
        attack_every: 6,
        seed: 34,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 14).build();
        let report = stamp::intruder::run(&stm, 2, &cfg);
        stamp::intruder::verify(&cfg, &report).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn vacation_conserves_under_every_algorithm() {
    let cfg = stamp::vacation::Config {
        resources: 24,
        customers: 12,
        initial_avail: 10,
        transactions: 250,
        queries: 4,
        reserve_pct: 80,
        seed: 35,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 16).build();
        stamp::vacation::run_verified(&stm, 2, &cfg)
            .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn labyrinth_routes_disjoint_paths_under_every_algorithm() {
    let cfg = stamp::labyrinth::Config {
        width: 20,
        height: 20,
        routes: 6,
        seed: 36,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 12).build();
        let report = stamp::labyrinth::run_verified(&stm, 2, &cfg)
            .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        assert!(report.checksum > 0, "{algo:?} routed nothing");
    }
}

#[test]
fn bayes_learns_acyclic_graph_under_every_algorithm() {
    let cfg = stamp::bayes::Config {
        vars: 12,
        candidates: 80,
        score_noops: 20,
        seed: 37,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(1 << 10).build();
        stamp::bayes::run_verified(&stm, 2, &cfg).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}

#[test]
fn rbtree_workload_preserves_invariants_under_every_algorithm() {
    let cfg = stamp::rbtree_bench::Config {
        initial_size: 200,
        read_pct: 50,
        delay_noops: 2,
        duration: std::time::Duration::from_millis(80),
        seed: 38,
    };
    for algo in algorithms() {
        let stm = Stm::builder(algo).heap_words(cfg.heap_words()).build();
        let tree = stamp::rbtree_bench::setup(&stm, &cfg);
        stamp::rbtree_bench::run_on(&stm, tree, 3, &cfg);
        tree.check_invariants(&stm).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
    }
}
