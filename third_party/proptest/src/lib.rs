//! Vendored minimal property-testing harness.
//!
//! This crate implements the subset of the `proptest` API this workspace
//! uses (`proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any`, integer-range / tuple / `prop::collection::vec` /
//! `prop::option::of` strategies, `prop_map`, `ProptestConfig`,
//! `TestCaseError`), so the workspace builds hermetically with no network
//! access. Cases are generated from a deterministic per-test RNG; there
//! is no shrinking — a failure reports the case number and message.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG used to generate test cases (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test's name, so every run of a given test
    /// explores the same case sequence.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, mixed so similar names diverge.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Why a generated test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
    /// Upstream-compatible knob; shrinking is not implemented here, so
    /// this is accepted and ignored.
    pub max_shrink_iters: u32,
    /// Upstream-compatible knob; local-rejection retry limits do not
    /// apply to this harness's unconditional generators.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
            max_local_rejects: 65_536,
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(width > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection and option strategies, under their upstream paths.
pub mod prop {
    /// `prop::collection` subset.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A vector whose length is drawn from `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let width = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(width) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `prop::option` subset.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` of the inner strategy about half the time, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool() {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// The usual import surface.
pub mod prelude {
    pub use crate::{
        any, prop, Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let result: $crate::TestCaseResult = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest '{}' case {} failed: {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
}

/// `assert!` that fails the current generated case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current generated case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![
                (0u64..10).prop_map(|v| v * 2),
                (100u64..110).prop_map(|v| v + 1),
            ]
        ) {
            prop_assert!(x < 20 || (101..=110).contains(&x), "got {x}");
        }
    }
}
